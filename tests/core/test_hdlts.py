"""Unit tests for the HDLTS scheduler core behaviour."""

import numpy as np
import pytest

from repro.core import HDLTS, PriorityRule
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


class TestFig1:
    def test_makespan_73(self, fig1):
        assert HDLTS().run(fig1).makespan == pytest.approx(73.0)

    def test_entry_duplicated_on_p1_and_p2(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        dup_procs = sorted(a.proc for a in schedule.duplicates(0))
        assert dup_procs == [0, 1]
        assert schedule.proc_of(0) == 2  # primary on P3

    def test_schedule_is_feasible(self, fig1):
        validate_schedule(fig1, HDLTS().run(fig1).schedule)

    def test_without_duplication_is_worse_here(self, fig1):
        base = HDLTS().run(fig1).makespan
        nodup = HDLTS(duplicate_entry=False).run(fig1).makespan
        assert nodup >= base
        assert len(HDLTS(duplicate_entry=False).run(fig1).schedule.duplicates()) == 0


class TestDegenerateGraphs:
    def test_single_task(self, single_task):
        result = HDLTS().run(single_task)
        assert result.makespan == 3.0  # min(3, 5)
        assert result.schedule.proc_of(0) == 0

    def test_chain_graph(self, chain):
        result = HDLTS().run(chain)
        validate_schedule(chain, result.schedule)
        # a chain's makespan is at least the sum of per-task minima
        assert result.makespan >= sum(chain.cost_row(t).min() for t in chain.tasks())

    def test_single_cpu(self):
        graph = make_random_graph(seed=5, v=30, n_procs=1)
        result = HDLTS().run(graph)
        validate_schedule(graph, result.schedule)
        # one CPU: makespan is exactly the serial sum
        assert result.makespan == pytest.approx(float(graph.cost_matrix().sum()))

    def test_multi_entry_graph_normalized_automatically(self):
        from repro.model.task_graph import TaskGraph

        graph = TaskGraph(2)
        a, b = graph.add_task([1, 2]), graph.add_task([2, 1])
        c = graph.add_task([3, 3])
        graph.add_edge(a, c, 1.0)
        graph.add_edge(b, c, 1.0)
        result = HDLTS().run(graph)  # run() normalizes with a pseudo entry
        assert result.schedule.is_complete()

    def test_zero_cost_pseudo_entry_not_duplicated(self):
        graph = make_random_graph(seed=9, v=40, alpha=2.0)
        entry = graph.entry_task
        if graph.cost_row(entry).max() == 0:  # pseudo entry
            schedule = HDLTS().run(graph).schedule
            assert not schedule.duplicates(entry)


class TestDynamicBehaviour:
    def test_all_tasks_scheduled_exactly_once(self):
        graph = make_random_graph(seed=1, v=100)
        schedule = HDLTS().run(graph).schedule
        assert schedule.is_complete()
        primary_counts = {}
        for timeline in schedule.timelines:
            for slot in timeline:
                if not slot.duplicate:
                    primary_counts[slot.task] = primary_counts.get(slot.task, 0) + 1
        assert all(count == 1 for count in primary_counts.values())
        assert len(primary_counts) == graph.n_tasks

    def test_only_entry_is_ever_duplicated(self):
        graph = make_random_graph(seed=2, v=100, ccr=4.0)
        schedule = HDLTS().run(graph).schedule
        entry = graph.entry_task
        assert all(a.task == entry for a in schedule.duplicates())

    def test_deterministic(self, fig1):
        a = HDLTS(record_trace=True).run(fig1)
        b = HDLTS(record_trace=True).run(fig1)
        assert a.makespan == b.makespan
        assert a.trace == b.trace

    def test_insertion_never_hurts(self):
        for seed in range(5):
            graph = make_random_graph(seed=seed, v=50, ccr=3.0)
            plain = HDLTS().run(graph).makespan
            inserted = HDLTS(use_insertion=True).run(graph).makespan
            # insertion can change decisions, so no strict dominance --
            # but the insertion schedule must at least stay feasible
            schedule = HDLTS(use_insertion=True).run(graph).schedule
            validate_schedule(graph, schedule)
            assert inserted > 0 and plain > 0


class TestPriorityRules:
    @pytest.mark.parametrize("rule", list(PriorityRule))
    def test_every_rule_produces_feasible_schedules(self, rule):
        graph = make_random_graph(seed=3, v=60)
        result = HDLTS(priority=rule).run(graph)
        validate_schedule(graph, result.schedule)

    def test_pv_is_default(self):
        assert HDLTS().priority is PriorityRule.PENALTY_VALUE

    def test_rules_differ_on_some_instance(self):
        """The ablation axes are real: rules pick different schedules."""
        seen = set()
        for seed in range(8):
            graph = make_random_graph(seed=seed, v=60, ccr=3.0)
            makespans = tuple(
                round(HDLTS(priority=rule).run(graph).makespan, 6)
                for rule in PriorityRule
            )
            seen.add(len(set(makespans)))
        assert max(seen) > 1

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError):
            HDLTS(priority="nonsense")


class TestComplexityScaling:
    def test_handles_1000_tasks(self):
        graph = make_random_graph(seed=4, v=1000)
        result = HDLTS().run(graph)
        assert result.schedule.is_complete()
        validate_schedule(graph, result.schedule)


class TestUpwardRankRule:
    def test_rank_rule_feasible_and_close_on_fig1(self, fig1):
        from repro.baselines.registry import make_scheduler

        result = make_scheduler("HDLTS-rank").run(fig1)
        validate_schedule(fig1, result.schedule)
        assert result.makespan == pytest.approx(74.0)

    def test_rank_rule_prefers_high_rank_tasks(self, fig1):
        """At step 2 the rank rule must pick T3/T4 (rank 80) before the
        PV favourite T6 (rank 63.3)."""
        scheduler = HDLTS(priority=PriorityRule.UPWARD_RANK, record_trace=True)
        trace = scheduler.run(fig1).trace
        assert trace[1].selected in (2, 3)  # T3 or T4

    def test_rank_rule_narrows_montage_gap(self):
        """Swapping PV for upward rank inside the dynamic loop recovers
        most of HDLTS's Montage deficit (the mechanism finding recorded
        in EXPERIMENTS.md)."""
        import numpy as np

        from repro.baselines.registry import make_scheduler
        from repro.metrics.metrics import slr
        from repro.workflows import montage_workflow

        pv_total, rank_total = 0.0, 0.0
        reps = 10
        for rep in range(reps):
            graph = montage_workflow(
                50, 5, rng=np.random.default_rng([50, rep, 3]), ccr=3.0
            ).normalized()
            pv_total += slr(graph, make_scheduler("HDLTS").run(graph).makespan)
            rank_total += slr(
                graph, make_scheduler("HDLTS-rank").run(graph).makespan
            )
        assert rank_total < pv_total

"""Unit tests for the Independent Task Queue."""

import pytest

from repro.core.itq import IndependentTaskQueue
from repro.model.task_graph import TaskGraph


def test_initial_ready_set_is_entry_tasks(fig1):
    itq = IndependentTaskQueue(fig1)
    assert itq.ready_tasks() == [0]
    assert len(itq) == 1
    assert 0 in itq


def test_completion_releases_children(fig1):
    itq = IndependentTaskQueue(fig1)
    released = itq.complete(0)
    assert sorted(released) == [1, 2, 3, 4, 5]
    assert itq.ready_tasks() == [1, 2, 3, 4, 5]


def test_child_released_only_after_all_parents(fig1):
    itq = IndependentTaskQueue(fig1)
    itq.complete(0)
    # T8 (id 7) needs T2, T4, T6 (ids 1, 3, 5)
    assert itq.complete(1) == []
    assert itq.complete(3) == []
    assert itq.complete(5) == [7]


def test_completing_non_ready_task_rejected(fig1):
    itq = IndependentTaskQueue(fig1)
    with pytest.raises(ValueError, match="not independent"):
        itq.complete(9)


def test_completing_twice_rejected(fig1):
    itq = IndependentTaskQueue(fig1)
    itq.complete(0)
    with pytest.raises(ValueError, match="not independent"):
        itq.complete(0)


def test_full_drain_visits_every_task(fig1):
    itq = IndependentTaskQueue(fig1)
    visited = []
    while itq:
        task = itq.ready_tasks()[0]
        visited.append(task)
        itq.complete(task)
    assert sorted(visited) == list(fig1.tasks())
    assert itq.all_mapped()
    assert itq.n_completed == fig1.n_tasks


def test_drain_order_is_topological(fig1):
    itq = IndependentTaskQueue(fig1)
    position = {}
    step = 0
    while itq:
        task = itq.ready_tasks()[-1]  # arbitrary pick
        position[task] = step
        itq.complete(task)
        step += 1
    for edge in fig1.edges():
        assert position[edge.src] < position[edge.dst]


def test_iteration_is_sorted(fig1):
    itq = IndependentTaskQueue(fig1)
    itq.complete(0)
    assert list(itq) == sorted(itq.ready_tasks())


def test_parallel_tasks_all_ready_immediately():
    graph = TaskGraph(1)
    for _ in range(4):
        graph.add_task([1])
    itq = IndependentTaskQueue(graph)
    assert itq.ready_tasks() == [0, 1, 2, 3]

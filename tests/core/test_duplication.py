"""Unit tests for Algorithm 1 (effective entry-task duplication)."""

import pytest

from repro.core.duplication import entry_arrival, entry_duplication_plan
from repro.schedule.schedule import Schedule


@pytest.fixture
def placed(fig1):
    """Fig. 1 state after step 1: entry on P3 finishing at 9."""
    schedule = Schedule(fig1)
    schedule.place(0, 2, 0.0)  # T1 on P3: [0, 9)
    return schedule


class TestPlan:
    def test_duplicate_when_local_copy_faster(self, placed):
        # T6 (id 5) on P1: network = 9 + 14 = 23; dup = W(T1, P1) = 14
        plan = entry_duplication_plan(placed, 0, 5, 0)
        assert plan.duplicate
        assert plan.arrival == 14.0

    def test_no_duplicate_on_entry_home_cpu(self, placed):
        # P3 already hosts the entry: arrival is its finish time
        plan = entry_duplication_plan(placed, 0, 5, 2)
        assert not plan.duplicate
        assert plan.arrival == 9.0

    def test_no_duplicate_when_network_faster(self, fig1):
        schedule = Schedule(fig1)
        schedule.place(0, 0, 0.0)  # entry on P1, AFT 14
        # T4 (id 3) on P2: network = 14 + 9 = 23; dup = W(T1, P2) = 16 < 23
        assert entry_duplication_plan(schedule, 0, 3, 1).duplicate
        # scale comm down: T4 edge cost 9 -> 1 makes network (15) faster... not
        # quite: dup = 16 > 14 + 1 = 15 -> no duplicate
        cheap = fig1.scaled_comm(1.0 / 9.0)
        schedule2 = Schedule(cheap)
        schedule2.place(0, 0, 0.0)
        assert not entry_duplication_plan(schedule2, 0, 3, 1).duplicate

    def test_strict_improvement_required(self, fig1):
        """Equal arrival times must not trigger a gratuitous copy."""
        schedule = Schedule(fig1)
        schedule.place(0, 0, 0.0)  # AFT = 14 on P1
        # engineer equality: entry cost on P2 is 16; network to T2 = 14+18=32
        # -> dup (16) wins.  Instead check P2 for an edge with comm 2:
        # no such edge in fig1, so test with allow_duplication toggle below.
        plan = entry_duplication_plan(schedule, 0, 1, 1, allow_duplication=False)
        assert not plan.duplicate
        assert plan.arrival == 32.0

    def test_duplicate_blocked_when_window_occupied(self, placed):
        # occupy P1's [0, 14) window with some other placement
        placed.place(5, 0, 2.0, duration=5.0)  # any task, interval [2, 7)
        plan = entry_duplication_plan(placed, 0, 1, 0)
        assert not plan.duplicate

    def test_duplicate_allowed_in_leading_idle_gap(self, placed):
        # a task placed late on P1 leaves [0, 14) free
        placed.place(5, 0, 20.0, duration=5.0)
        plan = entry_duplication_plan(placed, 0, 5, 0)
        assert plan.duplicate

    def test_existing_duplicate_not_repeated(self, placed):
        placed.place(0, 0, 0.0, duplicate=True)
        plan = entry_duplication_plan(placed, 0, 5, 0)
        assert not plan.duplicate
        assert plan.arrival == 14.0  # via the local copy


class TestArrival:
    def test_entry_arrival_shortcut(self, placed):
        assert entry_arrival(placed, 0, 5, 0) == 14.0
        assert entry_arrival(placed, 0, 5, 0, allow_duplication=False) == 23.0

    def test_arrival_uses_cheapest_committed_copy(self, placed):
        placed.place(0, 0, 0.0, duplicate=True)  # copy on P1 finishing at 14
        # on P2: min(via P3: 9 + 14, via P1: 14 + 14, hypothetical dup: 16)
        assert entry_arrival(placed, 0, 5, 1) == 16.0
        assert entry_arrival(placed, 0, 5, 1, allow_duplication=False) == 23.0

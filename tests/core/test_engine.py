"""Unit tests for the incremental vectorized EFT engine.

The engine's contract is *bit-identity* with the reference scalar
queries against any live schedule, so every test here compares engine
output to the corresponding :class:`Schedule` /
:func:`entry_duplication_plan` / :meth:`ProcessorTimeline.earliest_start`
answer on randomized partial schedules.
"""

import numpy as np
import pytest

from repro.core.duplication import entry_duplication_plan
from repro.core.engine import EFTEngine
from repro.schedule.schedule import Schedule
from repro.schedule.timeline import ProcessorTimeline
from tests.conftest import make_random_graph


def _partial_schedule(graph, rng, fraction=0.6, entry_dups=0):
    """Schedule a topological prefix of the graph with random placements."""
    schedule = Schedule(graph)
    order = graph.topological_order()
    n = max(1, int(len(order) * fraction))
    entry = order[0]
    for task in order[:n]:
        proc = int(rng.integers(graph.n_procs))
        ready = schedule.ready_time(task, proc)
        start = schedule.timelines[proc].earliest_start(
            ready, graph.cost(task, proc)
        )
        schedule.place(task, proc, start)
    dup_procs = [
        p for p in graph.procs() if p != schedule.proc_of(entry)
    ][:entry_dups]
    for proc in dup_procs:
        if schedule.timelines[proc].fits(0.0, graph.cost(entry, proc)):
            schedule.place(entry, proc, 0.0, duplicate=True)
    return schedule, order[:n]


class TestReadyVector:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_schedule_ready_time(self, seed):
        rng = np.random.default_rng(seed)
        graph = make_random_graph(seed=seed, v=40, n_procs=3)
        schedule, placed = _partial_schedule(graph, rng)
        engine = EFTEngine(schedule)
        placed_set = set(placed)
        for task in graph.tasks():
            if not all(p in placed_set for p in graph.predecessors(task)):
                continue
            vec = engine.ready_vector(task)
            for proc in graph.procs():
                assert vec[proc] == schedule.ready_time(task, proc)

    def test_unscheduled_parent_raises(self):
        graph = make_random_graph(seed=1, v=20)
        schedule = Schedule(graph)
        engine = EFTEngine(schedule)
        child = next(
            t for t in graph.tasks() if graph.in_degree(t) > 0
        )
        with pytest.raises(ValueError, match="not scheduled"):
            engine.ready_vector(child)

    def test_ingests_preexisting_placements(self):
        graph = make_random_graph(seed=2, v=30, n_procs=3)
        rng = np.random.default_rng(0)
        schedule, placed = _partial_schedule(graph, rng, entry_dups=2)
        engine = EFTEngine(schedule)  # built *after* the placements
        for task in placed:
            copies = schedule.copies(task)
            assert engine.best_finish[task] == min(c.finish for c in copies)
            for proc in graph.procs():
                local = [c.finish for c in copies if c.proc == proc]
                expected = min(local) if local else np.inf
                assert engine.local_finish[task, proc] == expected


class TestEntryPlan:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("allow", [True, False])
    def test_matches_algorithm_one(self, seed, allow):
        rng = np.random.default_rng(seed)
        graph = make_random_graph(seed=seed, v=40, n_procs=3, single_entry=True)
        entry = graph.entry_task
        schedule, placed = _partial_schedule(
            graph, rng, entry_dups=seed % graph.n_procs
        )
        engine = EFTEngine(
            schedule, entry=entry, hypothetical_entry_dup=allow
        )
        for child in graph.successors(entry):
            for proc in graph.procs():
                plan = entry_duplication_plan(
                    schedule, entry, child, proc, allow
                )
                duplicate, arrival = engine.entry_plan(child, proc)
                assert duplicate == plan.duplicate, (child, proc)
                assert arrival == plan.arrival, (child, proc)
                vec = engine.entry_arrival_vector(child)
                assert vec[proc] == plan.arrival
                col = engine.entry_arrival_column([child], proc)
                assert col[0] == plan.arrival

    def test_memo_invalidated_by_commits(self):
        graph = make_random_graph(seed=7, v=30, n_procs=3, single_entry=True)
        entry = graph.entry_task
        schedule = Schedule(graph)
        schedule.place(entry, 0, 0.0)
        engine = EFTEngine(schedule, entry=entry, hypothetical_entry_dup=True)
        child = graph.successors(entry)[0]
        before = engine.entry_plan(child, 1)
        # block CPU 1's duplication window, then re-query: the memo must
        # notice the timeline change through notify()
        blocker = schedule.place(child, 1, 0.0)
        engine.notify(blocker)
        after = engine.entry_plan(child, 1)
        plan = entry_duplication_plan(schedule, entry, child, 1, True)
        assert after == (plan.duplicate, plan.arrival)
        if before[0]:  # the window was usable before the blocker
            assert not after[0]


class TestEstEft:
    @pytest.mark.parametrize("insertion", [True, False])
    def test_matches_common_est_eft(self, insertion):
        from repro.baselines.common import est_eft

        rng = np.random.default_rng(3)
        graph = make_random_graph(seed=3, v=40, n_procs=4)
        schedule, placed = _partial_schedule(graph, rng)
        engine = EFTEngine(schedule)
        placed_set = set(placed)
        for task in graph.tasks():
            if task in placed_set or not all(
                p in placed_set for p in graph.predecessors(task)
            ):
                continue
            starts, finishes = engine.est_eft(task, insertion)
            for proc in graph.procs():
                s, f = est_eft(schedule, task, proc, insertion)
                assert starts[proc] == s
                assert finishes[proc] == f


class TestBatchEarliestStart:
    def _random_timeline(self, rng, n_slots=12, with_points=True):
        timeline = ProcessorTimeline(0)
        cursor = 0.0
        for i in range(n_slots):
            cursor += float(rng.uniform(0.0, 3.0))
            duration = float(rng.uniform(0.5, 4.0))
            timeline.reserve(100 + i, cursor, duration)
            if with_points and rng.random() < 0.4:
                # zero-duration pseudo-task slot at a boundary
                timeline.reserve(200 + i, cursor + duration, 0.0)
            cursor += duration
        return timeline

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("insertion", [True, False])
    def test_matches_scalar(self, seed, insertion):
        rng = np.random.default_rng(seed)
        timeline = self._random_timeline(rng)
        ready = rng.uniform(0.0, 40.0, size=64)
        durations = rng.uniform(0.0, 6.0, size=64)
        durations[::7] = 0.0  # exercise the point-task fallback
        # boundary-aligned queries: exactly at slot ends/starts
        for i, slot in enumerate(timeline.slots()):
            if i < len(ready) - 2:
                ready[i] = slot.end
                ready[i + 1] = slot.start
        batch = timeline.earliest_start_batch(ready, durations, insertion)
        for i in range(len(ready)):
            scalar = timeline.earliest_start(
                float(ready[i]), float(durations[i]), insertion
            )
            assert batch[i] == scalar, (i, ready[i], durations[i])

    def test_empty_timeline(self):
        timeline = ProcessorTimeline(0)
        ready = np.array([0.0, 3.5, 10.0])
        durations = np.array([1.0, 0.0, 2.0])
        batch = timeline.earliest_start_batch(ready, durations, True)
        assert batch.tolist() == ready.tolist()

    def test_negative_inputs_raise(self):
        timeline = ProcessorTimeline(0)
        timeline.reserve(1, 0.0, 2.0)
        with pytest.raises(ValueError):
            timeline.earliest_start_batch(
                np.array([-1.0]), np.array([1.0]), True
            )
        with pytest.raises(ValueError):
            timeline.earliest_start_batch(
                np.array([1.0]), np.array([-1.0]), True
            )


class TestBusyTimeAccumulator:
    def test_tracks_reserve_and_remove(self):
        timeline = ProcessorTimeline(0)
        assert timeline.busy_time() == 0.0
        timeline.reserve(1, 0.0, 2.0)
        timeline.reserve(2, 5.0, 3.0)
        timeline.reserve(3, 2.0, 0.0)  # point slot adds nothing
        assert timeline.busy_time() == 5.0
        timeline.remove(1)
        assert timeline.busy_time() == 3.0
        timeline.remove(3)
        assert timeline.busy_time() == 3.0

    def test_matches_slot_sum_on_random_timelines(self):
        rng = np.random.default_rng(11)
        timeline = ProcessorTimeline(0)
        cursor = 0.0
        for i in range(40):
            cursor += float(rng.uniform(0.0, 1.0))
            duration = float(rng.uniform(0.0, 2.0))
            timeline.reserve(i, cursor, duration)
            cursor += duration
        expected = sum(s.end - s.start for s in timeline.slots())
        assert timeline.busy_time() == pytest.approx(expected, rel=1e-12)

"""Unit tests for trace records and Table-I-style formatting."""

import pytest

from repro.core import HDLTS
from repro.core.trace import TraceStep, format_trace


@pytest.fixture
def trace(fig1):
    return HDLTS(record_trace=True).run(fig1).trace


def test_trace_off_by_default(fig1):
    assert HDLTS().run(fig1).trace is None


def test_steps_are_numbered_from_one(trace):
    assert [s.step for s in trace] == list(range(1, 11))


def test_priority_of_lookup(trace):
    step2 = trace[1]
    assert step2.priority_of(5) == step2.priorities[step2.ready_tasks.index(5)]
    with pytest.raises(ValueError):
        step2.priority_of(9)  # T10 not ready at step 2


def test_format_contains_header_and_all_rows(trace):
    text = format_trace(trace)
    assert "Step" in text and "Penalty Values" in text
    assert "EFT P1" in text and "EFT P3" in text
    assert len(text.splitlines()) == 2 + len(trace)


def test_format_custom_names(trace):
    names = {t: f"task{t}" for t in range(10)}
    text = format_trace(trace, names=names)
    assert "task0" in text
    assert "T1 " not in text


def test_format_precision(trace):
    text = format_trace(trace, precision=3)
    assert "7.095" in text  # step-2 PV of T6 with three decimals


def test_tracestep_is_immutable(trace):
    with pytest.raises(AttributeError):
        trace[0].step = 99


class TestExtendedFormat:
    def test_default_has_no_extended_columns(self, trace):
        text = format_trace(trace)
        assert "Start" not in text
        assert "Dup" not in text
        assert "*" not in text

    def test_extended_marks_chosen_eft(self, trace):
        text = format_trace(trace, extended=True)
        # step 1 selects T1 on P3 (EFT 9): the chosen cell carries a star
        assert "9*" in text.splitlines()[2]

    def test_extended_adds_start_finish_columns(self, trace):
        lines = format_trace(trace, extended=True).splitlines()
        assert "Start" in lines[0] and "Finish" in lines[0]
        assert "73" in lines[-1]  # the exit task finishes at the makespan

    def test_extended_shows_duplications(self, trace):
        text = format_trace(trace, extended=True)
        assert "Dup" in text.splitlines()[0]
        dup_cells = [p for s in trace for p in s.duplicated_on]
        assert dup_cells  # Fig. 1 run duplicates the entry task twice
        for proc in dup_cells:
            assert f"P{proc + 1}" in text

    def test_extended_star_count_matches_steps(self, trace):
        text = format_trace(trace, extended=True)
        assert text.count("*") == len(trace)

    def test_recorder_rebuilds_trace_from_events(self, fig1):
        from repro import obs
        from repro.core.trace import TraceRecorder

        recorder = TraceRecorder()
        unsubscribe = obs.subscribe(recorder, topics=(TraceRecorder.TOPIC,))
        try:
            result = HDLTS(record_trace=True).run(fig1)
        finally:
            unsubscribe()
        assert len(recorder.steps) == 10
        assert format_trace(recorder.steps) == format_trace(result.trace)

    def test_recorder_scheduler_filter(self, fig1):
        from repro import obs
        from repro.core.trace import TraceRecorder

        recorder = TraceRecorder(scheduler="SomethingElse")
        unsubscribe = obs.subscribe(recorder, topics=(TraceRecorder.TOPIC,))
        try:
            HDLTS().run(fig1)
        finally:
            unsubscribe()
        assert recorder.steps == []

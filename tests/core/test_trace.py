"""Unit tests for trace records and Table-I-style formatting."""

import pytest

from repro.core import HDLTS
from repro.core.trace import TraceStep, format_trace


@pytest.fixture
def trace(fig1):
    return HDLTS(record_trace=True).run(fig1).trace


def test_trace_off_by_default(fig1):
    assert HDLTS().run(fig1).trace is None


def test_steps_are_numbered_from_one(trace):
    assert [s.step for s in trace] == list(range(1, 11))


def test_priority_of_lookup(trace):
    step2 = trace[1]
    assert step2.priority_of(5) == step2.priorities[step2.ready_tasks.index(5)]
    with pytest.raises(ValueError):
        step2.priority_of(9)  # T10 not ready at step 2


def test_format_contains_header_and_all_rows(trace):
    text = format_trace(trace)
    assert "Step" in text and "Penalty Values" in text
    assert "EFT P1" in text and "EFT P3" in text
    assert len(text.splitlines()) == 2 + len(trace)


def test_format_custom_names(trace):
    names = {t: f"task{t}" for t in range(10)}
    text = format_trace(trace, names=names)
    assert "task0" in text
    assert "T1 " not in text


def test_format_precision(trace):
    text = format_trace(trace, precision=3)
    assert "7.095" in text  # step-2 PV of T6 with three decimals


def test_tracestep_is_immutable(trace):
    with pytest.raises(AttributeError):
        trace[0].step = 99

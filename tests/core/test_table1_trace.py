"""Golden test: the paper's Table I, cell by cell.

The paper prints penalty values truncated to one decimal (e.g. 5.69 ->
5.6), so PV comparisons use a 0.11 absolute tolerance; selections, CPU
choices and EFT rows are integers and must match exactly.

Known paper typo (documented in DESIGN.md): the step-1 PV of the entry
task is printed as 7.0 but the sample std of (14, 16, 9) is 3.6; the
entry is alone in the ITQ at step 1, so the schedule is unaffected.  We
assert our computed 3.6 there.
"""

import pytest

from repro.experiments.table1 import table1_trace

#: (ready tasks, penalty values, selected, (EFT P1, P2, P3), chosen proc)
#: -- transcribed from the paper's Table I; tasks are 1-based names.
_TABLE_I = [
    (("T1",), (3.6,), "T1", (14, 16, 9), 3),
    (
        ("T2", "T3", "T4", "T5", "T6"),
        (4.6, 2.0, 1.5, 5.1, 7.0),
        "T6",
        (27, 32, 18),
        3,
    ),
    (("T2", "T3", "T4", "T5"), (4.9, 6.1, 5.6, 1.5), "T3", (25, 29, 37), 1),
    (("T2", "T4", "T5", "T7"), (1.5, 7.3, 4.9, 16.8), "T7", (32, 63, 59), 1),
    (("T2", "T4", "T5"), (5.5, 10.5, 8.9), "T4", (45, 24, 35), 2),
    (("T2", "T5"), (4.7, 8.0), "T5", (44, 37, 28), 3),
    (("T2",), (1.5,), "T2", (45, 43, 46), 2),
    (("T8", "T9"), (11.0, 13.3), "T9", (77, 55, 79), 2),
    (("T8",), (5.5,), "T8", (67, 66, 76), 2),
    (("T10",), (13.2,), "T10", (98, 73, 93), 2),
]


@pytest.fixture(scope="module")
def trace():
    return table1_trace()


def test_ten_steps(trace):
    assert len(trace) == 10


@pytest.mark.parametrize("step", range(10))
def test_ready_sets_match(trace, step):
    ready, _, _, _, _ = _TABLE_I[step]
    names = tuple(f"T{t + 1}" for t in trace[step].ready_tasks)
    assert names == ready


@pytest.mark.parametrize("step", range(10))
def test_penalty_values_match(trace, step):
    _, pvs, _, _, _ = _TABLE_I[step]
    # the paper truncates to one decimal; allow 0.11 absolute slack
    assert trace[step].priorities == pytest.approx(pvs, abs=0.11)


@pytest.mark.parametrize("step", range(10))
def test_selected_task_matches(trace, step):
    _, _, selected, _, _ = _TABLE_I[step]
    assert f"T{trace[step].selected + 1}" == selected


@pytest.mark.parametrize("step", range(10))
def test_eft_rows_match_exactly(trace, step):
    _, _, _, eft, _ = _TABLE_I[step]
    assert trace[step].eft == pytest.approx(eft)


@pytest.mark.parametrize("step", range(10))
def test_chosen_cpu_matches(trace, step):
    _, _, _, _, proc = _TABLE_I[step]
    assert trace[step].chosen_proc + 1 == proc


def test_final_makespan_73(trace):
    assert trace[-1].finish == pytest.approx(73.0)


def test_duplications_happen_at_steps_3_and_5(trace):
    """T3 -> P1 materializes the dup on P1; T4 -> P2 on P2."""
    dup_steps = {s.step: s.duplicated_on for s in trace if s.duplicated_on}
    assert dup_steps == {3: (0,), 5: (1,)}

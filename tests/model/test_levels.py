"""Unit tests for level decomposition."""

from repro.model.levels import (
    graph_height,
    graph_width,
    level_decomposition,
    task_levels,
)
from repro.model.task_graph import TaskGraph


def test_fig1_levels(fig1):
    levels = task_levels(fig1)
    assert levels[0] == 0  # entry
    assert all(levels[t] == 1 for t in range(1, 6))  # T2..T6
    assert levels[6] == 2  # T7 (child of T3)
    assert levels[7] == 2 and levels[8] == 2  # T8, T9
    assert levels[9] == 3  # exit


def test_fig1_height_width(fig1):
    assert graph_height(fig1) == 4
    assert graph_width(fig1) == 5


def test_level_is_longest_path_not_shortest():
    """A task reachable by both a short and a long path sits deep."""
    graph = TaskGraph(1)
    a, b, c, d = (graph.add_task([1]) for _ in range(4))
    graph.add_edge(a, d, 1.0)  # short path: level would be 1
    graph.add_edge(a, b, 1.0)
    graph.add_edge(b, c, 1.0)
    graph.add_edge(c, d, 1.0)  # long path forces level 3
    assert task_levels(graph)[d] == 3


def test_level_decomposition_partitions_all_tasks(diamond):
    decomposition = level_decomposition(diamond)
    flat = [t for level in decomposition for t in level]
    assert sorted(flat) == list(diamond.tasks())
    assert decomposition == [(0,), (1, 2), (3,)]


def test_tasks_in_a_level_are_independent(fig1):
    """No edge may connect two tasks of the same level."""
    for level in level_decomposition(fig1):
        for a in level:
            for b in level:
                assert not fig1.has_edge(a, b)


def test_empty_graph():
    graph = TaskGraph(2)
    assert level_decomposition(graph) == []
    assert graph_height(graph) == 0
    assert graph_width(graph) == 0


def test_single_task():
    graph = TaskGraph(1)
    graph.add_task([1])
    assert graph_height(graph) == 1
    assert graph_width(graph) == 1


def test_parallel_tasks_no_edges():
    graph = TaskGraph(1)
    for _ in range(5):
        graph.add_task([1])
    assert graph_height(graph) == 1
    assert graph_width(graph) == 5

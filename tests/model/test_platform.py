"""Unit tests for the physical platform / workflow layer."""

import numpy as np
import pytest

from repro.model.platform import Platform, Workflow, compile_workflow


class TestPlatform:
    def test_scalar_bandwidth(self):
        platform = Platform([1e9, 2e9], bandwidth=100.0)
        assert platform.n_procs == 2
        assert platform.bandwidth(0, 1) == 100.0
        assert platform.bandwidth(0, 0) == np.inf  # same CPU is free

    def test_matrix_bandwidth(self):
        bw = np.array([[0.0, 10.0], [10.0, 0.0]])
        platform = Platform([1.0, 1.0], bandwidth=bw)
        assert platform.bandwidth(0, 1) == 10.0

    def test_asymmetric_matrix_rejected(self):
        bw = np.array([[0.0, 10.0], [20.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            Platform([1.0, 1.0], bandwidth=bw)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Platform([1.0, 1.0], bandwidth=0.0)
        bw = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError):
            Platform([1.0, 1.0], bandwidth=bw)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Platform([1.0, 0.0])

    def test_empty_frequencies_rejected(self):
        with pytest.raises(ValueError):
            Platform([])

    def test_min_mean_bandwidth(self):
        bw = np.array(
            [[0.0, 10.0, 30.0], [10.0, 0.0, 20.0], [30.0, 20.0, 0.0]]
        )
        platform = Platform([1, 1, 1], bandwidth=bw)
        assert platform.min_bandwidth() == 10.0
        assert platform.mean_bandwidth() == pytest.approx(20.0)

    def test_single_cpu_bandwidth_is_inf(self):
        platform = Platform([2.0])
        assert platform.min_bandwidth() == np.inf
        assert platform.mean_bandwidth() == np.inf

    def test_uniform_factory(self):
        platform = Platform.uniform(4, frequency=2.0)
        assert platform.n_procs == 4
        assert platform.frequency(3) == 2.0

    def test_frequencies_view_readonly(self):
        platform = Platform([1.0, 2.0])
        with pytest.raises(ValueError):
            platform.frequencies[0] = 9.0


class TestWorkflow:
    def test_add_task_and_edge(self):
        wf = Workflow()
        a = wf.add_task(100.0, name="a")
        b = wf.add_task(200.0)
        wf.add_edge(a, b, 50.0)
        assert wf.n_tasks == 2
        assert wf.names == ["a", "T2"]
        assert wf.data[(a, b)] == 50.0

    def test_rejects_negative_instructions(self):
        with pytest.raises(ValueError):
            Workflow().add_task(-1.0)

    def test_rejects_unknown_edge_endpoint(self):
        wf = Workflow()
        wf.add_task(1.0)
        with pytest.raises(KeyError):
            wf.add_edge(0, 7, 1.0)

    def test_rejects_duplicate_edge(self):
        wf = Workflow()
        a, b = wf.add_task(1.0), wf.add_task(1.0)
        wf.add_edge(a, b, 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            wf.add_edge(a, b, 2.0)


class TestCompile:
    def test_definition_1_division(self):
        """Execution time = instructions / frequency."""
        wf = Workflow()
        wf.add_task(100.0)
        platform = Platform([10.0, 50.0], bandwidth=1.0)
        graph = compile_workflow(wf, platform)
        assert graph.cost(0, 0) == pytest.approx(10.0)
        assert graph.cost(0, 1) == pytest.approx(2.0)

    def test_definition_2_division(self):
        """Communication time = data volume / bandwidth."""
        wf = Workflow()
        a, b = wf.add_task(1.0), wf.add_task(1.0)
        wf.add_edge(a, b, 300.0)
        platform = Platform([1.0, 1.0], bandwidth=100.0)
        graph = compile_workflow(wf, platform)
        assert graph.comm_cost(a, b) == pytest.approx(3.0)

    def test_single_cpu_comm_is_free(self):
        wf = Workflow()
        a, b = wf.add_task(1.0), wf.add_task(1.0)
        wf.add_edge(a, b, 300.0)
        graph = compile_workflow(wf, Platform([1.0]))
        assert graph.comm_cost(a, b) == 0.0

    def test_compiled_graph_is_schedulable(self):
        from repro.core import HDLTS

        wf = Workflow()
        a = wf.add_task(10.0)
        b = wf.add_task(20.0)
        c = wf.add_task(30.0)
        wf.add_edge(a, b, 5.0)
        wf.add_edge(a, c, 5.0)
        graph = compile_workflow(wf, Platform([1.0, 2.0], bandwidth=10.0))
        result = HDLTS().run(graph)
        assert result.schedule.is_complete()
        assert result.makespan > 0

"""Unit tests for the compiled CSR graph view and its artifact cache."""

import numpy as np
import pytest

from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.model.compiled import (
    CompiledGraph,
    compile_graph,
    compiled_enabled,
    use_compiled,
)
from repro.model.ranking import (
    downward_rank_reference,
    optimistic_cost_table_reference,
    upward_rank_reference,
)
from repro.model.task_graph import TaskGraph


def random_graph(seed, v=60, ccr=2.0, **kw):
    return generate_random_graph(
        GeneratorConfig(v=v, ccr=ccr, **kw), np.random.default_rng(seed)
    )


class TestSwitch:
    def test_enabled_by_default(self):
        assert compiled_enabled()

    def test_scoped_disable_restores(self):
        with use_compiled(False):
            assert not compiled_enabled()
            with use_compiled(True):
                assert compiled_enabled()
            assert not compiled_enabled()
        assert compiled_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_compiled(False):
                raise RuntimeError("boom")
        assert compiled_enabled()


class TestStructure:
    def test_w_matches_cost_matrix_and_is_readonly(self, fig1):
        compiled = compile_graph(fig1)
        assert np.array_equal(compiled.w, fig1.cost_matrix())
        assert not compiled.w.flags.writeable
        assert compiled.w_rows == fig1.cost_matrix().tolist()

    @pytest.mark.parametrize("seed", range(4))
    def test_csr_mirrors_adjacency_in_insertion_order(self, seed):
        graph = random_graph(seed)
        compiled = compile_graph(graph)
        for task in graph.tasks():
            ids, costs = compiled.succ_slice(task)
            assert tuple(ids.tolist()) == graph.successors(task)
            assert costs.tolist() == [
                graph.comm_cost(task, s) for s in graph.successors(task)
            ]
            pids, pcosts = compiled.pred_slice(task)
            assert tuple(pids.tolist()) == graph.predecessors(task)
            assert pcosts.tolist() == [
                graph.comm_cost(p, task) for p in graph.predecessors(task)
            ]

    def test_pred_lists_mirror_csr(self, fig1):
        compiled = compile_graph(fig1)
        for task in fig1.tasks():
            ids, costs = compiled.pred_slice(task)
            mids, mcosts = compiled.pred_lists[task]
            assert mids == ids.tolist()
            assert mcosts == costs.tolist()

    def test_topo_and_terminals(self, fig1):
        compiled = compile_graph(fig1)
        assert tuple(compiled.topo.tolist()) == fig1.topological_order()
        assert tuple(compiled.entry_ids.tolist()) == fig1.entry_tasks()
        assert tuple(compiled.exit_ids.tolist()) == fig1.exit_tasks()
        pos = compiled.topo_position
        for rank_pos, task in enumerate(fig1.topological_order()):
            assert pos[task] == rank_pos

    def test_arrays_are_readonly(self, fig1):
        compiled = compile_graph(fig1)
        for arr in (
            compiled.succ_indptr,
            compiled.succ_ids,
            compiled.succ_costs,
            compiled.pred_indptr,
            compiled.pred_ids,
            compiled.pred_costs,
            compiled.topo,
            compiled.topo_position,
            compiled.entry_ids,
            compiled.exit_ids,
        ):
            assert not arr.flags.writeable

    def test_single_task_graph(self):
        graph = TaskGraph(3)
        graph.add_task([1, 2, 3])
        compiled = compile_graph(graph)
        assert compiled.n_tasks == 1
        assert compiled.succ_ids.size == 0
        assert compiled.upward_rank().tolist() == [2.0]
        assert compiled.downward_rank().tolist() == [0.0]
        assert compiled.oct_table().tolist() == [[0.0, 0.0, 0.0]]
        assert compiled.sequential_time() == 1.0


class TestArtifactCache:
    def test_compile_graph_is_cached_per_instance(self, fig1):
        assert compile_graph(fig1) is compile_graph(fig1)

    def test_mutation_invalidates_compiled_view(self, fig1):
        before = compile_graph(fig1)
        task = fig1.add_task([1.0, 1.0, 1.0])
        fig1.add_edge(9, task, 0.5)
        after = compile_graph(fig1)
        assert after is not before
        assert after.n_tasks == before.n_tasks + 1

    def test_artifacts_are_shared_objects(self, fig1):
        compiled = compile_graph(fig1)
        assert compiled.upward_rank() is compiled.upward_rank()
        assert compiled.downward_rank() is compiled.downward_rank()
        assert compiled.oct_table() is compiled.oct_table()
        assert compiled.oct_rank() is compiled.oct_rank()
        assert compiled.mean_costs() is compiled.mean_costs()
        assert compiled.std_costs() is compiled.std_costs()

    def test_explicit_weights_bypass_cache(self, fig1):
        compiled = compile_graph(fig1)
        weights = compiled.std_costs()
        a = compiled.upward_rank(weights)
        b = compiled.upward_rank(weights)
        assert a is not b
        assert np.array_equal(a, b)

    def test_mean_and_std_match_matrix(self, fig1):
        compiled = compile_graph(fig1)
        w = fig1.cost_matrix()
        assert np.array_equal(compiled.mean_costs(), w.mean(axis=1))
        assert np.array_equal(compiled.std_costs(), w.std(axis=1, ddof=1))

    def test_std_collapses_with_single_cpu(self):
        graph = TaskGraph(1)
        graph.add_task([5.0])
        graph.add_task([7.0])
        assert compile_graph(graph).std_costs().tolist() == [0.0, 0.0]

    def test_sequential_time_is_best_column(self, fig1):
        compiled = compile_graph(fig1)
        assert compiled.sequential_time() == float(
            fig1.cost_matrix().sum(axis=0).min()
        )

    def test_cp_min_matches_reference(self):
        from repro.metrics.critical_path import cp_min_lower_bound

        for seed in range(4):
            graph = random_graph(seed, v=40)
            with use_compiled(False):
                reference = cp_min_lower_bound(graph)
            assert compile_graph(graph).cp_min_bound() == reference


class TestParentArrays:
    def test_entry_parent_split(self, fig1):
        compiled = compile_graph(fig1)
        entry = fig1.entry_task
        child = fig1.successors(entry)[0]
        ids, costs, ids_ne, costs_ne = compiled.parent_arrays(child, entry)
        assert tuple(ids.tolist()) == fig1.predecessors(child)
        assert entry in ids.tolist()
        assert entry not in ids_ne.tolist()
        assert len(costs_ne) == len(ids_ne)

    def test_no_entry_keeps_full_arrays(self, fig1):
        compiled = compile_graph(fig1)
        child = fig1.successors(fig1.entry_task)[0]
        ids, costs, ids_ne, costs_ne = compiled.parent_arrays(child, None)
        assert ids is ids_ne and costs is costs_ne

    def test_cached_per_task_entry_pair(self, fig1):
        compiled = compile_graph(fig1)
        entry = fig1.entry_task
        child = fig1.successors(entry)[0]
        assert compiled.parent_arrays(child, entry) is compiled.parent_arrays(
            child, entry
        )

    def test_entry_comm_vector(self, fig1):
        compiled = compile_graph(fig1)
        entry = fig1.entry_task
        vec = compiled.entry_comm_vector(entry)
        assert vec is compiled.entry_comm_vector(entry)
        for task in fig1.tasks():
            expected = (
                fig1.comm_cost(entry, task)
                if fig1.has_edge(entry, task)
                else 0.0
            )
            assert vec[task] == expected


class TestKernelsBitIdentical:
    """The level-batched kernels against the per-node recursions."""

    def graphs(self):
        yield "fig1", __import__(
            "repro.workflows.paper_example", fromlist=["paper_example_graph"]
        ).paper_example_graph()
        for seed in range(6):
            # alternate shape / ccr / heterogeneity; include multi-entry
            yield f"random-{seed}", random_graph(
                seed,
                v=30 + 25 * seed,
                ccr=(0.5, 3.0)[seed % 2],
                alpha=(0.8, 2.0)[seed % 2],
            )

    def test_upward_rank(self):
        for label, graph in self.graphs():
            compiled = compile_graph(graph)
            expected = upward_rank_reference(graph)
            assert np.array_equal(compiled.upward_rank(), expected), label

    def test_upward_rank_custom_weights(self):
        for label, graph in self.graphs():
            compiled = compile_graph(graph)
            weights = np.asarray(compiled.std_costs())
            expected = upward_rank_reference(graph, weights)
            assert np.array_equal(
                compiled.upward_rank(weights), expected
            ), label

    def test_downward_rank(self):
        for label, graph in self.graphs():
            compiled = compile_graph(graph)
            expected = downward_rank_reference(graph)
            assert np.array_equal(compiled.downward_rank(), expected), label

    def test_oct_table(self):
        for label, graph in self.graphs():
            compiled = compile_graph(graph)
            expected = optimistic_cost_table_reference(graph)
            assert np.array_equal(compiled.oct_table(), expected), label

    def test_oct_rank_is_row_mean(self, fig1):
        compiled = compile_graph(fig1)
        assert np.array_equal(
            compiled.oct_rank(), compiled.oct_table().mean(axis=1)
        )


class TestConstructionPaths:
    def test_direct_constructor_matches_cached_view(self, fig1):
        direct = CompiledGraph(fig1)
        cached = compile_graph(fig1)
        assert np.array_equal(direct.w, cached.w)
        assert np.array_equal(direct.succ_ids, cached.succ_ids)
        assert np.array_equal(direct.succ_costs, cached.succ_costs)

    def test_bulk_built_graph(self):
        """Graphs assembled through ``TaskGraph._bulk`` (the generator
        path) compile identically to incrementally-built ones."""
        bulk = random_graph(11, v=25)
        manual = TaskGraph(bulk.n_procs)
        for task in bulk.tasks():
            manual.add_task(list(bulk.cost_row(task)))
        for edge in bulk.edges():
            manual.add_edge(edge.src, edge.dst, edge.cost)
        a, b = compile_graph(bulk), compile_graph(manual)
        assert np.array_equal(a.w, b.w)
        assert np.array_equal(a.succ_indptr, b.succ_indptr)
        assert np.array_equal(a.succ_ids, b.succ_ids)
        assert np.array_equal(a.succ_costs, b.succ_costs)
        assert np.array_equal(a.upward_rank(), b.upward_rank())

"""Unit tests for task-graph structural validation."""

import pytest

from repro.model.task_graph import TaskGraph
from repro.model.validation import (
    ValidationError,
    is_connected_to_entry,
    validate_task_graph,
)


def test_valid_graph_passes(fig1):
    validate_task_graph(fig1)  # no exception


def test_empty_graph_rejected():
    with pytest.raises(ValidationError, match="no tasks"):
        validate_task_graph(TaskGraph(1))


def test_cycle_reported():
    graph = TaskGraph(1)
    a, b = graph.add_task([1]), graph.add_task([1])
    graph.add_edge(a, b, 1.0)
    graph.add_edge(b, a, 1.0)
    with pytest.raises(ValidationError, match="cycle"):
        validate_task_graph(graph)


def test_single_entry_requirement():
    graph = TaskGraph(1)
    graph.add_task([1])
    graph.add_task([1])
    validate_task_graph(graph, require_connected=False)
    with pytest.raises(ValidationError, match="single entry"):
        validate_task_graph(
            graph, require_single_entry=True, require_connected=False
        )


def test_single_exit_requirement(fig1):
    validate_task_graph(fig1, require_single_entry=True, require_single_exit=True)
    graph = TaskGraph(1)
    a = graph.add_task([1])
    graph.add_edge(a, graph.add_task([1]), 1.0)
    graph.add_edge(a, graph.add_task([1]), 1.0)
    with pytest.raises(ValidationError, match="single exit"):
        validate_task_graph(graph, require_single_exit=True)


def test_disconnected_component_detected():
    graph = TaskGraph(1)
    a, b = graph.add_task([1]), graph.add_task([1])
    graph.add_edge(a, b, 1.0)
    c, d = graph.add_task([1]), graph.add_task([1])
    graph.add_edge(c, d, 1.0)
    # two separate components: both have entries, so reachable; connected
    assert is_connected_to_entry(graph)
    validate_task_graph(graph)


def test_all_problems_collected():
    """The validator reports every issue at once, not just the first."""
    graph = TaskGraph(1)
    graph.add_task([1])
    graph.add_task([1])
    try:
        validate_task_graph(
            graph,
            require_single_entry=True,
            require_single_exit=True,
            require_connected=False,
        )
    except ValidationError as err:
        assert len(err.problems) == 2
    else:
        pytest.fail("expected ValidationError")


def test_normalized_generator_output_passes():
    from tests.conftest import make_random_graph

    graph = make_random_graph(seed=3, v=80)
    validate_task_graph(
        graph, require_single_entry=True, require_single_exit=True
    )

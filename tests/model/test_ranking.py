"""Unit tests for rank functions against published values."""

import numpy as np
import pytest

from repro.model.attributes import std_execution_times
from repro.model.ranking import (
    downward_rank,
    oct_rank,
    optimistic_cost_table,
    upward_rank,
)
from repro.model.task_graph import TaskGraph

#: canonical HEFT upward ranks for the Fig. 1 graph (Topcuoglu, TPDS 2002)
_PUBLISHED_RANK_U = [
    108.000,
    77.000,
    80.000,
    80.000,
    69.000,
    63.333,
    42.667,
    35.667,
    44.333,
    14.667,
]


class TestUpwardRank:
    def test_published_fig1_values(self, fig1):
        ranks = upward_rank(fig1)
        assert ranks == pytest.approx(_PUBLISHED_RANK_U, abs=1e-3)

    def test_exit_rank_is_own_weight(self, fig1):
        ranks = upward_rank(fig1)
        assert ranks[9] == pytest.approx(fig1.cost_row(9).mean())

    def test_monotone_along_edges(self, fig1):
        ranks = upward_rank(fig1)
        for edge in fig1.edges():
            assert ranks[edge.src] >= ranks[edge.dst]

    def test_custom_weights(self, fig1):
        """SDBATS variant: std weights still monotone along edges."""
        ranks = upward_rank(fig1, std_execution_times(fig1))
        for edge in fig1.edges():
            assert ranks[edge.src] >= ranks[edge.dst]

    def test_rejects_wrong_weight_shape(self, fig1):
        with pytest.raises(ValueError, match="shape"):
            upward_rank(fig1, np.zeros(3))


class TestDownwardRank:
    def test_entry_rank_is_zero(self, fig1):
        assert downward_rank(fig1)[0] == 0.0

    def test_chain_accumulates(self, chain):
        ranks = downward_rank(chain)
        # rank_d(C1) = rank_d(C0) + mean_w(C0) + comm(C0, C1) = 0 + 6 + 2
        assert ranks[1] == pytest.approx(8.0)

    def test_upward_plus_downward_constant_on_critical_path(self, fig1):
        """Every critical-path task carries the entry's priority."""
        priority = upward_rank(fig1) + downward_rank(fig1)
        cp_value = priority[0]
        assert priority.max() == pytest.approx(cp_value)


class TestOCT:
    def test_exit_row_is_zero(self, fig1):
        table = optimistic_cost_table(fig1)
        assert np.all(table[9] == 0.0)

    def test_parent_of_exit(self, fig1):
        """OCT(T8, p) = min_q [w(T10, q) + c(8,10) * (q != p)]."""
        table = optimistic_cost_table(fig1)
        w10 = fig1.cost_row(9)  # (21, 7, 16)
        comm = fig1.comm_cost(7, 9)  # 11
        for p in range(3):
            opts = [w10[q] + (comm if q != p else 0.0) for q in range(3)]
            assert table[7, p] == pytest.approx(min(opts))

    def test_oct_nonnegative(self, fig1):
        assert np.all(optimistic_cost_table(fig1) >= 0)

    def test_rank_is_row_mean(self, fig1):
        table = optimistic_cost_table(fig1)
        assert oct_rank(fig1, table) == pytest.approx(table.mean(axis=1))

    def test_rank_without_table_argument(self, fig1):
        assert oct_rank(fig1) == pytest.approx(
            optimistic_cost_table(fig1).mean(axis=1)
        )

    def test_single_task_graph(self):
        graph = TaskGraph(2)
        graph.add_task([1, 2])
        assert np.all(optimistic_cost_table(graph) == 0)

"""Unit tests for the TaskGraph data structure."""

import numpy as np
import pytest

from repro.model.task_graph import Edge, TaskGraph


class TestConstruction:
    def test_add_task_returns_sequential_ids(self):
        graph = TaskGraph(2)
        assert graph.add_task([1, 2]) == 0
        assert graph.add_task([3, 4]) == 1
        assert graph.n_tasks == 2

    def test_default_names_are_one_based(self):
        graph = TaskGraph(2)
        tid = graph.add_task([1, 2])
        assert graph.name(tid) == "T1"

    def test_custom_name(self):
        graph = TaskGraph(1)
        tid = graph.add_task([1], name="decode")
        assert graph.name(tid) == "decode"

    def test_rejects_wrong_cost_arity(self):
        graph = TaskGraph(3)
        with pytest.raises(ValueError, match="expected 3 costs"):
            graph.add_task([1, 2])

    def test_rejects_negative_cost(self):
        graph = TaskGraph(2)
        with pytest.raises(ValueError, match="finite and non-negative"):
            graph.add_task([1, -2])

    def test_rejects_nan_cost(self):
        graph = TaskGraph(2)
        with pytest.raises(ValueError):
            graph.add_task([1, float("nan")])

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError, match="n_procs"):
            TaskGraph(0)


class TestEdges:
    def test_add_edge_and_query(self, diamond):
        assert diamond.has_edge(0, 1)
        assert diamond.comm_cost(0, 1) == 5.0
        assert not diamond.has_edge(1, 0)

    def test_successors_predecessors(self, diamond):
        assert set(diamond.successors(0)) == {1, 2}
        assert set(diamond.predecessors(3)) == {1, 2}
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(3) == 2

    def test_rejects_self_loop(self):
        graph = TaskGraph(1)
        t = graph.add_task([1])
        with pytest.raises(ValueError, match="self-loop"):
            graph.add_edge(t, t, 1.0)

    def test_rejects_duplicate_edge(self, diamond):
        with pytest.raises(ValueError, match="duplicate edge"):
            diamond.add_edge(0, 1, 2.0)

    def test_rejects_negative_comm(self):
        graph = TaskGraph(1)
        a, b = graph.add_task([1]), graph.add_task([1])
        with pytest.raises(ValueError, match="finite and >= 0"):
            graph.add_edge(a, b, -1.0)

    def test_rejects_unknown_task(self):
        graph = TaskGraph(1)
        graph.add_task([1])
        with pytest.raises(KeyError):
            graph.add_edge(0, 5, 1.0)

    def test_missing_edge_raises(self, diamond):
        with pytest.raises(KeyError, match="no edge"):
            diamond.comm_cost(1, 2)

    def test_edges_iterator_yields_edge_objects(self, diamond):
        edges = list(diamond.edges())
        assert len(edges) == 4
        assert all(isinstance(e, Edge) for e in edges)
        assert (0, 1, 5.0) in [(e.src, e.dst, e.cost) for e in edges]

    def test_zero_cost_edge_allowed(self):
        graph = TaskGraph(1)
        a, b = graph.add_task([1]), graph.add_task([1])
        graph.add_edge(a, b, 0.0)
        assert graph.comm_cost(a, b) == 0.0


class TestCosts:
    def test_cost_lookup(self, fig1):
        assert fig1.cost(0, 0) == 14
        assert fig1.cost(0, 2) == 9
        assert fig1.cost(9, 1) == 7

    def test_cost_row_is_readonly(self, fig1):
        row = fig1.cost_row(0)
        with pytest.raises(ValueError):
            row[0] = 99

    def test_cost_matrix_shape_and_copy(self, fig1):
        w = fig1.cost_matrix()
        assert w.shape == (10, 3)
        w[0, 0] = -1  # mutating the copy must not affect the graph
        assert fig1.cost(0, 0) == 14

    def test_empty_graph_cost_matrix(self):
        graph = TaskGraph(4)
        assert graph.cost_matrix().shape == (0, 4)


class TestDerivedViews:
    def test_topological_order_respects_edges(self, fig1):
        order = fig1.topological_order()
        position = {t: i for i, t in enumerate(order)}
        for edge in fig1.edges():
            assert position[edge.src] < position[edge.dst]

    def test_topological_order_detects_cycle(self):
        graph = TaskGraph(1)
        a, b = graph.add_task([1]), graph.add_task([1])
        graph.add_edge(a, b, 1.0)
        graph.add_edge(b, a, 1.0)
        with pytest.raises(ValueError, match="cycle"):
            graph.topological_order()

    def test_entry_exit_tasks(self, fig1):
        assert fig1.entry_tasks() == (0,)
        assert fig1.exit_tasks() == (9,)
        assert fig1.entry_task == 0
        assert fig1.exit_task == 9

    def test_entry_task_raises_on_multiple(self):
        graph = TaskGraph(1)
        graph.add_task([1])
        graph.add_task([1])
        with pytest.raises(ValueError, match="entry tasks"):
            graph.entry_task

    def test_cache_invalidated_on_mutation(self, diamond):
        assert diamond.exit_tasks() == (3,)
        extra = diamond.add_task([1, 1])
        diamond.add_edge(3, extra, 0.5)
        assert diamond.exit_tasks() == (extra,)


class TestNormalization:
    def test_already_normal_graph_is_copied(self, fig1):
        norm = fig1.normalized()
        assert norm.n_tasks == fig1.n_tasks
        assert norm.n_edges == fig1.n_edges
        assert norm is not fig1

    def test_multi_entry_gets_pseudo_entry(self):
        graph = TaskGraph(2)
        a, b = graph.add_task([1, 1]), graph.add_task([2, 2])
        c = graph.add_task([3, 3])
        graph.add_edge(a, c, 1.0)
        graph.add_edge(b, c, 1.0)
        norm = graph.normalized()
        assert norm.n_tasks == 4
        entry = norm.entry_task
        assert norm.name(entry) == "pseudo_entry"
        assert np.all(norm.cost_row(entry) == 0)
        assert all(norm.comm_cost(entry, t) == 0.0 for t in norm.successors(entry))

    def test_multi_exit_gets_pseudo_exit(self):
        graph = TaskGraph(2)
        a = graph.add_task([1, 1])
        b, c = graph.add_task([2, 2]), graph.add_task([3, 3])
        graph.add_edge(a, b, 1.0)
        graph.add_edge(a, c, 1.0)
        norm = graph.normalized()
        assert norm.name(norm.exit_task) == "pseudo_exit"

    def test_multi_entry_and_exit_both_fixed(self):
        graph = TaskGraph(1)
        for _ in range(4):
            graph.add_task([1])
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 3, 1.0)
        norm = graph.normalized()
        assert norm.n_tasks == 6
        assert len(norm.entry_tasks()) == 1
        assert len(norm.exit_tasks()) == 1


class TestConversionsAndScaling:
    def test_to_networkx_roundtrip_structure(self, fig1):
        g = fig1.to_networkx()
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 15
        assert g.edges[0, 1]["cost"] == 18

    def test_scaled_comm(self, fig1):
        doubled = fig1.scaled_comm(2.0)
        assert doubled.comm_cost(0, 1) == 36
        assert doubled.cost(0, 0) == 14  # computation untouched

    def test_scaled_comm_zero(self, fig1):
        free = fig1.scaled_comm(0.0)
        assert all(e.cost == 0 for e in free.edges())

    def test_scaled_comm_rejects_negative(self, fig1):
        with pytest.raises(ValueError):
            fig1.scaled_comm(-1.0)

    def test_from_arrays(self):
        graph = TaskGraph.from_arrays(
            np.array([[1.0, 2.0], [3.0, 4.0]]), [(0, 1, 5.0)], names=["x", "y"]
        )
        assert graph.n_tasks == 2
        assert graph.comm_cost(0, 1) == 5.0
        assert graph.name(1) == "y"

    def test_from_arrays_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            TaskGraph.from_arrays(np.array([1.0, 2.0]), [])

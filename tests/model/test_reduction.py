"""Unit tests for transitive reduction."""

import pytest

from repro.model.reduction import redundant_edges, transitive_reduction
from repro.model.task_graph import TaskGraph
from tests.conftest import make_random_graph


def chain_with_shortcut() -> TaskGraph:
    graph = TaskGraph(2)
    a, b, c = (graph.add_task([1, 1]) for _ in range(3))
    graph.add_edge(a, b, 1.0)
    graph.add_edge(b, c, 2.0)
    graph.add_edge(a, c, 9.0)  # redundant: implied by a->b->c
    return graph


def test_detects_shortcut():
    assert redundant_edges(chain_with_shortcut()) == [(0, 2)]


def test_reduction_removes_only_redundant():
    reduced = transitive_reduction(chain_with_shortcut())
    assert reduced.n_edges == 2
    assert reduced.has_edge(0, 1) and reduced.has_edge(1, 2)
    assert not reduced.has_edge(0, 2)
    assert reduced.comm_cost(1, 2) == 2.0  # surviving costs kept


def test_fig1_is_already_reduced(fig1):
    assert redundant_edges(fig1) == []
    assert transitive_reduction(fig1).n_edges == fig1.n_edges


def test_reachability_preserved():
    graph = make_random_graph(seed=9, v=60, density=5)
    reduced = transitive_reduction(graph)

    def closure(g):
        pairs = set()
        order = g.topological_order()
        reach = {t: {t} for t in g.tasks()}
        for t in reversed(order):
            for s in g.successors(t):
                reach[t] |= reach[s]
            pairs |= {(t, x) for x in reach[t] if x != t}
        return pairs

    assert closure(graph) == closure(reduced)


def test_diamond_has_no_redundancy(diamond):
    assert redundant_edges(diamond) == []


def test_cascaded_redundancy_removed_together():
    """Two mutually-path-covered edges are both removable in a DAG."""
    graph = TaskGraph(1)
    a, b, c, d = (graph.add_task([1]) for _ in range(4))
    graph.add_edge(a, b, 1.0)
    graph.add_edge(b, c, 1.0)
    graph.add_edge(c, d, 1.0)
    graph.add_edge(a, c, 1.0)  # redundant
    graph.add_edge(a, d, 1.0)  # redundant (via either path)
    reduced = transitive_reduction(graph)
    assert reduced.n_edges == 3
    # reachability a->d preserved
    assert (0, 3) in {
        (x, y)
        for x in reduced.tasks()
        for y in reduced.tasks()
        if _reaches(reduced, x, y)
    }


def _reaches(graph, src, dst):
    stack = [src]
    seen = set()
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        for s in graph.successors(node):
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return False


def test_schedulers_accept_reduced_graphs():
    from repro.core import HDLTS
    from repro.schedule.validation import validate_schedule

    graph = make_random_graph(seed=11, v=50, density=5)
    reduced = transitive_reduction(graph)
    result = HDLTS().run(reduced)
    validate_schedule(reduced, result.schedule)

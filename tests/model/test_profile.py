"""Unit tests for workload profiling."""

import numpy as np
import pytest

from repro.model.profile import graph_profile
from repro.model.task_graph import TaskGraph
from tests.conftest import make_random_graph


def test_fig1_profile(fig1):
    profile = graph_profile(fig1)
    assert profile.n_tasks == 10 and profile.n_edges == 15
    assert profile.height == 4 and profile.width == 5
    # T1 fans out to 5, T2..T6 have 1-2 children, T7..T9 have 1
    assert profile.density == pytest.approx(15 / 9)
    assert profile.mean_computation == pytest.approx(
        fig1.cost_matrix().mean()
    )
    assert 0 < profile.serialism < 1
    assert profile.parallelism == pytest.approx((10 / 4) / 3)


def test_generator_targets_materialize():
    """Requested CCR shows up in the realized profile."""
    for ccr in (1.0, 4.0):
        graph = make_random_graph(seed=1, v=300, ccr=ccr)
        profile = graph_profile(graph)
        assert profile.ccr == pytest.approx(ccr, rel=0.3)


def test_beta_materializes_as_heterogeneity():
    lo = graph_profile(make_random_graph(seed=2, v=200, beta=0.4))
    hi = graph_profile(make_random_graph(seed=2, v=200, beta=2.0))
    assert hi.heterogeneity > 2 * lo.heterogeneity


def test_chain_is_fully_serial(chain):
    assert graph_profile(chain).serialism == pytest.approx(1.0)


def test_independent_tasks_minimally_serial():
    graph = TaskGraph(2)
    for _ in range(10):
        graph.add_task([4.0, 4.0])
    profile = graph_profile(graph)
    assert profile.serialism == pytest.approx(0.1)
    assert profile.height == 1 and profile.width == 10


def test_empty_graph_rejected():
    with pytest.raises(ValueError):
        graph_profile(TaskGraph(2))


def test_format_renders(fig1):
    text = graph_profile(fig1).format()
    assert "realized CCR" in text and "serialism" in text

"""Unit tests for Definitions 1-2 and 8 primitives."""

import numpy as np
import pytest

from repro.model.attributes import (
    communication_cost,
    mean_execution_time,
    mean_execution_times,
    sample_std,
    std_execution_times,
)
from repro.model.task_graph import TaskGraph


class TestMeanExecution:
    def test_eq1_on_fig1_entry(self, fig1):
        assert mean_execution_time(fig1, 0) == pytest.approx((14 + 16 + 9) / 3)

    def test_vector_matches_scalar(self, fig1):
        vec = mean_execution_times(fig1)
        for task in fig1.tasks():
            assert vec[task] == pytest.approx(mean_execution_time(fig1, task))

    def test_empty_graph(self):
        assert mean_execution_times(TaskGraph(3)).shape == (0,)


class TestStdExecution:
    def test_sample_std_convention(self, fig1):
        # entry task costs (14, 16, 9): sample std = sqrt(13)
        vec = std_execution_times(fig1)
        assert vec[0] == pytest.approx(np.sqrt(13.0))

    def test_single_cpu_gives_zero(self):
        graph = TaskGraph(1)
        graph.add_task([5])
        assert std_execution_times(graph)[0] == 0.0


class TestCommunicationCost:
    def test_same_proc_is_free(self, fig1):
        assert communication_cost(fig1, 0, 1, src_proc=2, dst_proc=2) == 0.0

    def test_cross_proc_pays_edge_cost(self, fig1):
        assert communication_cost(fig1, 0, 1, src_proc=0, dst_proc=2) == 18.0

    def test_unknown_placement_is_pessimistic(self, fig1):
        assert communication_cost(fig1, 0, 1) == 18.0

    def test_unknown_src_known_dst(self, fig1):
        assert communication_cost(fig1, 0, 1, dst_proc=1) == 18.0


class TestSampleStd:
    def test_matches_table1_pv(self):
        """PVs from the paper's Table I step 2 (see DESIGN.md)."""
        assert sample_std(np.array([27, 35, 27])) == pytest.approx(4.6, abs=0.05)
        assert sample_std(np.array([25, 29, 28])) == pytest.approx(2.0, abs=0.1)
        assert sample_std(np.array([27, 24, 26])) == pytest.approx(1.5, abs=0.05)
        assert sample_std(np.array([26, 29, 19])) == pytest.approx(5.1, abs=0.05)
        assert sample_std(np.array([27, 32, 18])) == pytest.approx(7.0, abs=0.1)

    def test_population_std_would_not_match(self):
        """Sanity check of the ddof=1 decision: ddof=0 misses Table I."""
        pop = float(np.array([27, 35, 27]).std(ddof=0))
        assert abs(pop - 4.6) > 0.5

    def test_single_value_is_zero(self):
        assert sample_std(np.array([42.0])) == 0.0

    def test_empty_is_zero(self):
        assert sample_std(np.array([])) == 0.0

    def test_constant_vector_is_zero(self):
        assert sample_std(np.array([3.0, 3.0, 3.0])) == 0.0

"""Property-based tests (hypothesis) on core invariants.

Strategy: generate arbitrary layered DAGs with random costs and check
that every scheduler in the registry produces feasible schedules whose
metrics satisfy the theory-level invariants:

* feasibility (validator passes),
* makespan >= CP_MIN lower bound (SLR >= 1),
* makespan <= best sequential time (speedup >= 1 is NOT guaranteed for
  adversarial comm costs, but makespan <= serial-on-one-CPU *with the
  same placement freedom* is -- we check the weaker sane bound),
* simulator replay never exceeds the analytic makespan,
* the timeline invariants (no overlap) hold by construction.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.registry import PAPER_SET, make_scheduler
from repro.core import HDLTS
from repro.core.itq import IndependentTaskQueue
from repro.metrics.critical_path import cp_min_lower_bound
from repro.metrics.metrics import slr
from repro.model.task_graph import TaskGraph
from repro.schedule.simulator import ScheduleSimulator
from repro.schedule.timeline import ProcessorTimeline
from repro.schedule.validation import validate_schedule

# long-running property suite: marked slow (still in the default run,
# deselect explicitly with -m 'not slow' for a quick loop)
pytestmark = pytest.mark.slow


# ----------------------------------------------------------------------
# graph strategy: layered DAGs, 1-4 CPUs, arbitrary non-negative costs
# ----------------------------------------------------------------------
@st.composite
def task_graphs(draw) -> TaskGraph:
    n_procs = draw(st.integers(min_value=1, max_value=4))
    n_levels = draw(st.integers(min_value=1, max_value=4))
    widths = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n_levels)]
    cost = st.floats(
        min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
    )
    comm = st.floats(
        min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False
    )
    graph = TaskGraph(n_procs)
    levels = []
    for width in widths:
        level = [
            graph.add_task([draw(cost) for _ in range(n_procs)])
            for _ in range(width)
        ]
        levels.append(level)
    for upper, lower in zip(levels, levels[1:]):
        for child in lower:
            # every child gets at least one parent: connected layers
            n_parents = draw(st.integers(min_value=1, max_value=len(upper)))
            parents = draw(
                st.permutations(upper).map(lambda p: p[:n_parents])
            )
            for parent in parents:
                graph.add_edge(parent, child, draw(comm))
    return graph.normalized()


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph=task_graphs(), name=st.sampled_from(PAPER_SET))
@_SETTINGS
def test_every_scheduler_is_feasible_on_arbitrary_dags(graph, name):
    result = make_scheduler(name).run(graph)
    assert result.schedule.is_complete()
    validate_schedule(graph, result.schedule)


@given(graph=task_graphs(), name=st.sampled_from(PAPER_SET))
@_SETTINGS
def test_makespan_dominates_cp_lower_bound(graph, name):
    makespan = make_scheduler(name).run(graph).makespan
    assert makespan >= cp_min_lower_bound(graph) - 1e-6


@given(graph=task_graphs())
@_SETTINGS
def test_slr_at_least_one_when_defined(graph):
    makespan = HDLTS().run(graph).makespan
    if cp_min_lower_bound(graph) > 0:
        assert slr(graph, makespan) >= 1.0 - 1e-9


@given(graph=task_graphs(), name=st.sampled_from(PAPER_SET))
@_SETTINGS
def test_simulator_replay_never_exceeds_analytic(graph, name):
    schedule = make_scheduler(name).run(graph).schedule
    sim = ScheduleSimulator(graph).run(schedule)
    assert sim.makespan <= schedule.makespan + 1e-6


@given(graph=task_graphs())
@_SETTINGS
def test_hdlts_simulator_replay_is_exact(graph):
    """Append-based HDLTS: analytic times ARE the realized times."""
    schedule = HDLTS().run(graph).schedule
    sim = ScheduleSimulator(graph).run(schedule)
    assert sim.makespan == pytest.approx(schedule.makespan)


@given(graph=task_graphs())
@_SETTINGS
def test_itq_drains_in_topological_order(graph):
    itq = IndependentTaskQueue(graph)
    done = set()
    while itq:
        task = itq.ready_tasks()[0]
        assert all(p in done for p in graph.predecessors(task))
        itq.complete(task)
        done.add(task)
    assert len(done) == graph.n_tasks


# ----------------------------------------------------------------------
# timeline property: arbitrary reservations never overlap
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            st.floats(min_value=0, max_value=50, allow_nan=False),
        ),
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_timeline_reservations_never_overlap(intervals):
    timeline = ProcessorTimeline(0)
    placed = []
    for i, (start, duration) in enumerate(intervals):
        if timeline.fits(start, start + duration):
            timeline.reserve(i, start, duration)
            placed.append((start, start + duration))
    # empty intervals occupy nothing; overlap applies to real ones only
    ordered = sorted(
        (s for s in timeline.slots() if s.end - s.start > 1e-9),
        key=lambda s: s.start,
    )
    for a, b in zip(ordered, ordered[1:]):
        assert a.end <= b.start + 1e-9
    assert len(timeline.slots()) == len(placed)


@given(
    ready=st.floats(min_value=0, max_value=100, allow_nan=False),
    duration=st.floats(min_value=0, max_value=20, allow_nan=False),
    existing=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=200, allow_nan=False),
            st.floats(min_value=0.1, max_value=10, allow_nan=False),
        ),
        max_size=10,
    ),
)
@settings(max_examples=100, deadline=None)
def test_earliest_start_results_are_reservable(ready, duration, existing):
    """Whatever earliest_start returns must actually fit (both modes)."""
    timeline = ProcessorTimeline(0)
    for i, (start, dur) in enumerate(existing):
        if timeline.fits(start, start + dur):
            timeline.reserve(i, start, dur)
    for insertion in (False, True):
        start = timeline.earliest_start(ready, duration, insertion)
        assert start >= ready
        assert timeline.fits(start, start + duration)




# ----------------------------------------------------------------------
# io round trip: serialization is lossless for arbitrary graphs
# ----------------------------------------------------------------------
@given(graph=task_graphs())
@_SETTINGS
def test_json_round_trip_preserves_everything(graph):
    from repro.io.json_io import graph_from_dict, graph_to_dict

    restored = graph_from_dict(graph_to_dict(graph))
    assert restored.n_tasks == graph.n_tasks
    assert restored.n_procs == graph.n_procs
    assert sorted(map(tuple, restored.edges())) == sorted(
        map(tuple, graph.edges())
    )
    # schedules of the round-tripped graph are identical
    assert HDLTS().run(restored).makespan == pytest.approx(
        HDLTS().run(graph).makespan
    )


# ----------------------------------------------------------------------
# energy invariants on arbitrary graphs
# ----------------------------------------------------------------------
@given(graph=task_graphs())
@_SETTINGS
def test_slack_reclamation_preserves_makespan_and_saves_energy(graph):
    from repro.energy.model import EnergyModel
    from repro.energy.slack import reclaim_slack

    schedule = HDLTS().run(graph).schedule
    if schedule.makespan <= 0:
        return  # all-zero-cost degenerate graphs have nothing to reclaim
    model = EnergyModel(graph.n_procs)
    baseline = model.energy(schedule)
    stretched, scales = reclaim_slack(graph, schedule)
    assert stretched.makespan == pytest.approx(schedule.makespan)
    saved = model.energy_with_frequencies(stretched, scales)
    assert saved.total <= baseline.total + 1e-6


# ----------------------------------------------------------------------
# online mode with exact durations reproduces offline HDLTS
# ----------------------------------------------------------------------
@given(graph=task_graphs())
@_SETTINGS
def test_online_exact_matches_offline(graph):
    from repro.dynamic.online import OnlineHDLTS

    offline = HDLTS().run(graph).makespan
    online = OnlineHDLTS().execute(graph).makespan
    assert online == pytest.approx(offline)


# ----------------------------------------------------------------------
# GA chromosomes decode to feasible schedules on arbitrary graphs
# ----------------------------------------------------------------------
@given(graph=task_graphs(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ga_random_chromosomes_always_feasible(graph, seed):
    import numpy as np

    from repro.genetic.ga import GeneticScheduler

    rng = np.random.default_rng(seed)
    scheduler = GeneticScheduler()
    order = scheduler._random_topological_order(graph, rng)
    order = scheduler._order_mutation(graph, order, rng)
    mapping = tuple(
        int(x) for x in rng.integers(0, graph.n_procs, size=graph.n_tasks)
    )
    schedule = scheduler.decode(graph, (order, mapping))
    validate_schedule(graph, schedule)


# ----------------------------------------------------------------------
# exact solver dominates heuristics on tiny instances
# ----------------------------------------------------------------------
@given(graph=task_graphs())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bnb_lower_bounds_heft_on_tiny_graphs(graph):
    from repro.exact.branch_and_bound import SearchBudgetExceeded, optimal_makespan

    if graph.n_tasks > 8:
        return
    try:
        opt = optimal_makespan(graph, max_states=500_000)
    except SearchBudgetExceeded:
        return
    heft = make_scheduler("HEFT").run(graph).makespan
    assert heft >= opt - 1e-6


# ----------------------------------------------------------------------
# contention replay: inflation is non-negative, everything completes
# ----------------------------------------------------------------------
@given(graph=task_graphs())
@_SETTINGS
def test_contention_never_beats_contention_free(graph):
    from repro.schedule.contention import ContentionSimulator

    schedule = HDLTS().run(graph).schedule
    free = ScheduleSimulator(graph).run(schedule).makespan
    contended = ContentionSimulator(graph).run(schedule)
    assert contended.makespan >= free - 1e-6
    assert set(contended.finish_times) == set(graph.tasks())


# ----------------------------------------------------------------------
# transitive reduction: never adds edges, preserves schedulability
# ----------------------------------------------------------------------
@given(graph=task_graphs())
@_SETTINGS
def test_transitive_reduction_sound(graph):
    from repro.model.reduction import transitive_reduction

    reduced = transitive_reduction(graph)
    assert reduced.n_edges <= graph.n_edges
    assert reduced.n_tasks == graph.n_tasks
    result = HDLTS().run(reduced)
    validate_schedule(reduced, result.schedule)

"""The rate->0 differential: a lone job must replay the offline paths.

A stream holding exactly one job arriving at time zero is an offline
problem wearing arena clothes.  ``OnlineHDLTS`` through the arena must
reproduce :class:`repro.dynamic.online.OnlineHDLTS` bit for bit --
every dispatch record, the makespan, the counters -- and every
``Static/<Name>`` policy must reproduce ``replay_static`` of that
scheduler's offline schedule.  These are the anchor tests that make the
multi-job arena trustworthy: everything it adds (admission, hold-back,
cross-job interleaving) must vanish exactly at rate -> 0.
"""

import math

import pytest

from repro import obs
from repro.baselines.registry import make_scheduler
from repro.dynamic.failures import FailStop
from repro.dynamic.noise import exact_durations
from repro.dynamic.online import OnlineHDLTS, OnlineRecord, replay_static
from repro.stream import run_stream
from tests.stream.conftest import lone_job_instance

SEEDS = range(12)


def _as_online_records(result):
    return [
        OnlineRecord(r.task, r.proc, r.start, r.finish, r.duplicate, r.lost)
        for r in result.records
    ]


def _assert_identical(stream_result, online_result):
    assert _as_online_records(stream_result) == online_result.records
    job = stream_result.jobs[0]
    assert job.finished
    assert job.finish == online_result.makespan
    assert job.finish_times == online_result.finish_times
    assert job.proc_of == online_result.proc_of


class TestOnlineDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_durations_bit_identical(self, seed):
        instance = lone_job_instance(seed)
        graph = instance.jobs[0].graph
        offline = OnlineHDLTS().execute(graph, exact_durations(graph))
        result = run_stream(instance, "OnlineHDLTS")
        _assert_identical(result, offline)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_noisy_durations_bit_identical(self, seed):
        instance = lone_job_instance(seed, sigma=0.3)
        job = instance.jobs[0]
        offline = OnlineHDLTS().execute(job.graph, job.duration_fn())
        result = run_stream(instance, "OnlineHDLTS")
        _assert_identical(result, offline)

    @pytest.mark.parametrize("seed", (0, 3, 7))
    def test_failures_bit_identical(self, seed):
        failures = [FailStop(0, 15.0), FailStop(1, 40.0)]
        instance = lone_job_instance(seed, sigma=0.2)
        job = instance.jobs[0]
        offline = OnlineHDLTS().execute(job.graph, job.duration_fn(), failures)
        result = run_stream(instance, "OnlineHDLTS", failures=failures)
        assert _as_online_records(result) == offline.records
        assert result.n_lost_dispatches == offline.n_lost
        assert result.dead_procs == offline.dead_procs
        assert result.jobs[0].finish - 0.0 == offline.makespan

    def test_counters_match_offline(self):
        instance = lone_job_instance(5)
        graph = instance.jobs[0].graph
        with obs.session(metrics=True) as offline_sess:
            OnlineHDLTS().execute(graph, exact_durations(graph))
        with obs.session(metrics=True) as stream_sess:
            run_stream(instance, "OnlineHDLTS")
        offline_counters = offline_sess.snapshot["counters"]
        stream_counters = stream_sess.snapshot["counters"]
        assert (
            stream_counters["stream/dispatches"]
            == offline_counters["online/dispatches"]
        )
        assert stream_counters["stream/jobs"] == 1
        assert stream_counters["stream/job_finishes"] == 1
        assert "stream/lost" not in stream_counters

    def test_nonzero_arrival_is_a_pure_time_shift(self):
        """Arrival at t>0 shifts the whole schedule rigidly (exact case)."""
        base = run_stream(lone_job_instance(2), "OnlineHDLTS")
        shifted = run_stream(
            lone_job_instance(2, arrival=100.0), "OnlineHDLTS"
        )
        assert len(base.records) == len(shifted.records)
        for a, b in zip(base.records, shifted.records):
            assert (a.task, a.proc, a.duplicate) == (b.task, b.proc, b.duplicate)
            assert b.start == pytest.approx(a.start + 100.0)
            assert b.finish == pytest.approx(a.finish + 100.0)
        assert shifted.jobs[0].sojourn == pytest.approx(base.jobs[0].sojourn)


class TestStaticDifferential:
    @pytest.mark.parametrize("name", ("HDLTS", "HEFT", "PETS"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_matches_replay_static(self, name, seed):
        instance = lone_job_instance(seed, ccr=5.0)
        job = instance.jobs[0]
        schedule = make_scheduler(name).run(job.graph).schedule
        reference = replay_static(job.graph, schedule, job.duration_fn())
        result = run_stream(instance, f"Static/{name}")
        _assert_identical(result, reference)

    @pytest.mark.parametrize("name", ("HDLTS", "HEFT"))
    @pytest.mark.parametrize("seed", (1, 4, 9))
    def test_noisy_matches_replay_static(self, name, seed):
        instance = lone_job_instance(seed, sigma=0.3, ccr=2.0)
        job = instance.jobs[0]
        schedule = make_scheduler(name).run(job.graph).schedule
        reference = replay_static(job.graph, schedule, job.duration_fn())
        result = run_stream(instance, f"Static/{name}")
        _assert_identical(result, reference)

    def test_duplicate_records_carry_their_own_interval(self):
        """Regression: replay_static used to report a duplicated entry
        twice with the primary's times and no flag; the arena compares
        per-copy records, which is what flushed the bug out."""
        import numpy as np

        from repro.generator import GeneratorConfig, generate_random_graph
        from repro.stream import StreamInstance, StreamJob

        graph = generate_random_graph(
            GeneratorConfig(v=10, n_procs=3, ccr=5.0, beta=2.0),
            np.random.default_rng(46),
        )
        if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
            graph = graph.normalized()
        schedule = make_scheduler("HDLTS").run(graph).schedule
        assert schedule.duplicates(), "seed 46 must produce an entry duplicate"
        instance = StreamInstance(
            jobs=(StreamJob(0, 0.0, graph),), n_procs=3
        )
        result = run_stream(instance, "Static/HDLTS")
        reference = replay_static(graph, schedule)
        assert _as_online_records(result) == reference.records
        dups = [r for r in reference.records if r.duplicate]
        assert len(dups) == 1
        # the duplicate's realized interval is its own, not the primary's
        entry = dups[0].task
        primary = [
            r for r in reference.records if r.task == entry and not r.duplicate
        ]
        assert len(primary) == 1
        assert not math.isclose(dups[0].finish, primary[0].finish) or (
            dups[0].proc != primary[0].proc
        )

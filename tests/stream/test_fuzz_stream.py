"""The ``repro fuzz --stream`` campaign mode and its corpus pinning."""

import pytest

from repro.qa.corpus import read_corpus, replay_entry
from repro.qa.fuzz import FuzzConfig, run_campaign


class TestStreamCampaign:
    def test_small_campaign_is_green(self):
        report = run_campaign(FuzzConfig(instances=6, seed=3, stream=True))
        assert report.ok, report.format()
        assert report.instances == 6
        # every instance ran every default policy + its differential
        assert report.builds == 18
        assert report.exact_checks == 18

    def test_policy_subset(self):
        report = run_campaign(
            FuzzConfig(
                instances=3, seed=1, stream=True,
                stream_policies=["OnlineHDLTS"],
            )
        )
        assert report.ok
        assert report.builds == 3

    def test_invariant_subset_respected(self):
        report = run_campaign(
            FuzzConfig(
                instances=2, seed=0, stream=True,
                invariants=["stream_conservation"],
            )
        )
        assert report.ok

    def test_campaign_is_deterministic(self):
        a = run_campaign(FuzzConfig(instances=4, seed=7, stream=True))
        b = run_campaign(FuzzConfig(instances=4, seed=7, stream=True))
        assert a.builds == b.builds
        assert len(a.violations) == len(b.violations)

    def test_inject_incompatible_with_stream(self):
        with pytest.raises(ValueError, match="inject"):
            run_campaign(
                FuzzConfig(instances=1, stream=True, inject="wrong-duration")
            )

    def test_golden_incompatible_with_stream(self, tmp_path):
        with pytest.raises(ValueError, match="golden"):
            run_campaign(
                FuzzConfig(
                    instances=1, stream=True,
                    golden_path=str(tmp_path / "g.jsonl"),
                )
            )

    def test_violations_pinned_as_replayable_stream_entries(self, tmp_path):
        """A broken policy's failures land in the corpus as kind=stream."""
        corpus = tmp_path / "stream-corpus.jsonl"
        # a crash is the easiest guaranteed violation: unknown policy
        report = run_campaign(
            FuzzConfig(
                instances=2, seed=5, stream=True,
                stream_policies=["Static/NoSuchScheduler"],
                corpus_path=str(corpus),
            )
        )
        assert not report.ok
        entries = read_corpus(corpus)
        assert entries, "violations must be pinned"
        for entry in entries:
            assert entry.kind == "stream"
            assert entry.expected["stream"]["jobs"]
            assert entry.id.startswith("stream-s5-i")
            # the pinned entry replays to the same present-day failure
            assert replay_entry(entry)

"""CLI smoke tests for the ``repro stream`` verbs."""

import csv
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_stream_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream"])

    def test_stream_run_args(self):
        args = build_parser().parse_args(
            ["stream", "run", "--jobs", "5", "--rate", "0.05",
             "--policy", "Static/HEFT", "--seed", "3"]
        )
        assert args.stream_command == "run"
        assert args.jobs == 5 and args.rate == 0.05
        assert args.policy == "Static/HEFT"

    def test_stream_sweep_axis_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "sweep", "--axis", "bogus"]
            )

    def test_fuzz_stream_flag(self):
        args = build_parser().parse_args(
            ["fuzz", "--stream", "--policies", "OnlineHDLTS"]
        )
        assert args.stream and args.policies == "OnlineHDLTS"


class TestStreamRun:
    def test_run_prints_per_job_and_fleet_tables(self, capsys):
        assert main(
            ["stream", "run", "--jobs", "4", "--v", "8", "--procs", "3",
             "--sigma", "0.2", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "finished 4/4 jobs" in out
        assert "sojourn mean" in out
        assert "utilization mean" in out
        assert "energy: busy" in out

    def test_run_static_policy(self, capsys):
        assert main(
            ["stream", "run", "--jobs", "3", "--v", "8",
             "--policy", "Static/HEFT", "--interval", "40"]
        ) == 0
        assert "Static/HEFT" in capsys.readouterr().out

    def test_run_writes_per_job_csv(self, tmp_path, capsys):
        path = tmp_path / "jobs.csv"
        assert main(
            ["stream", "run", "--jobs", "3", "--v", "8",
             "--jobs-csv", str(path)]
        ) == 0
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        assert rows[0]["status"] == "finished"
        assert float(rows[0]["sojourn"]) > 0.0

    def test_run_events_are_stream_events(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(
            ["stream", "run", "--jobs", "3", "--v", "8",
             "--events", str(path)]
        ) == 0
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {e["event"] for e in events}
        assert "stream.arrival" in kinds
        assert "stream.dispatch" in kinds
        assert "stream.job_finish" in kinds

    def test_conflicting_arrival_flags_exit_2(self, capsys):
        assert main(
            ["stream", "run", "--rate", "0.1", "--interval", "5"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_policy_exits_2(self, capsys):
        assert main(
            ["stream", "run", "--jobs", "2", "--policy", "Static/Nope"]
        ) == 2


class TestStreamSweep:
    def test_sweep_prints_table_and_csv(self, tmp_path, capsys):
        path = tmp_path / "sweep.csv"
        assert main(
            ["stream", "sweep", "--axis", "rate", "--x", "0.01,0.05",
             "--jobs", "3", "--v", "8", "--reps", "2", "--seed", "2",
             "--csv", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Arrival rate" in out and "best" in out
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert {r["Arrival rate"] for r in rows} == {"0.01", "0.05"}

    def test_sweep_interval_axis(self, capsys):
        assert main(
            ["stream", "sweep", "--axis", "interval", "--x", "20,60",
             "--jobs", "3", "--v", "8", "--reps", "2",
             "--metric", "throughput"]
        ) == 0
        assert "Arrival interval" in capsys.readouterr().out

    def test_sweep_axis_arrival_mismatch_exits_2(self, capsys):
        assert main(
            ["stream", "sweep", "--axis", "rate", "--interval", "9",
             "--reps", "1"]
        ) == 2

    def test_sweep_parallel_matches_serial(self, capsys):
        argv = ["stream", "sweep", "--axis", "rate", "--x", "0.02",
                "--jobs", "3", "--v", "8", "--reps", "2", "--seed", "4"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2", "--chunk-size", "1"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestFuzzStream:
    def test_fuzz_stream_smoke(self, capsys):
        assert main(
            ["fuzz", "--stream", "--instances", "2", "--seed", "4",
             "--quiet"]
        ) == 0
        assert "0 violations" in capsys.readouterr().out

"""Injection-rate sweeps through the ordinary experiment machinery.

A stream-backed :class:`SweepDefinition` must behave exactly like a
graph-backed one everywhere it travels: serial harness, process pools
(any start method), campaign shards with streaming merge, manifests.
The acceptance bar is bit-identity, not approximation -- Welford
accumulation in submission order makes that possible.
"""

import numpy as np
import pytest

from repro.experiments.campaign import Campaign, merge, run_shard
from repro.experiments.harness import SweepDefinition, run_sweep
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.report import format_sweep, winners
from repro.runtime.context import RunContext
from repro.stream.spec import (
    DEFAULT_POLICIES,
    run_stream_replication,
    stream_sweep_definition,
)
from tests.stream.conftest import small_spec


def rate_sweep(metric="sojourn", **spec_kwargs):
    spec = small_spec(n_jobs=4, v=8, sigma=0.2, **spec_kwargs)
    return stream_sweep_definition(
        "stream-rate-test", spec, (0.01, 0.05), metric=metric
    )


def _assert_bit_identical(result, serial):
    for x in serial.definition.x_values:
        for name in serial.definition.schedulers:
            a, b = result.stats[x][name], serial.stats[x][name]
            assert (a.n, a._mean, a._m2, a._min, a._max) == (
                b.n, b._mean, b._m2, b._min, b._max
            ), (x, name)


# ----------------------------------------------------------------------
# definition plumbing
# ----------------------------------------------------------------------
class TestDefinition:
    def test_round_trips_through_dict(self):
        definition = rate_sweep()
        again = SweepDefinition.from_dict(definition.to_dict())
        assert again.key == definition.key
        assert again.metric == definition.metric
        assert again.schedulers == definition.schedulers
        assert again.stream.to_dict() == definition.stream.to_dict()
        # the rebuilt spec materializes the identical workload
        a = definition.stream.build(0.05, np.random.default_rng([1, 0, 0]))
        b = again.stream.build(0.05, np.random.default_rng([1, 0, 0]))
        assert [j.arrival for j in a.jobs] == [j.arrival for j in b.jobs]
        for ja, jb in zip(a.jobs, b.jobs):
            assert np.array_equal(ja.durations, jb.durations)

    def test_stream_definitions_are_portable(self):
        assert rate_sweep().portable

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            rate_sweep(metric="makespan-ish")

    def test_unknown_policy_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            stream_sweep_definition(
                "bad", small_spec(), (0.01,), policies=("Static/NoSuch",)
            )

    def test_default_policies_cover_online_and_static(self):
        assert "OnlineHDLTS" in DEFAULT_POLICIES
        assert any(p.startswith("Static/") for p in DEFAULT_POLICIES)

    def test_replication_is_a_paired_comparison(self):
        definition = rate_sweep()
        values = run_stream_replication(definition, 0.05, 1, 2, seed=9)
        assert set(values) == set(definition.schedulers)
        again = run_stream_replication(definition, 0.05, 1, 2, seed=9)
        assert values == again


# ----------------------------------------------------------------------
# serial / parallel / campaign bit-identity
# ----------------------------------------------------------------------
class TestExecution:
    def test_serial_sweep_runs_and_orients_correctly(self):
        definition = rate_sweep()
        result = run_sweep(definition, reps=3, seed=2)
        table = format_sweep(result)
        assert "stream-rate-test" in table.splitlines()[0]
        # sojourn is lower-is-better: the winner has the smallest mean
        for x, name in winners(result).items():
            means = {
                n: result.stats[x][n].mean for n in definition.schedulers
            }
            assert means[name] == min(means.values())

    def test_throughput_winner_is_max(self):
        result = run_sweep(rate_sweep(metric="throughput"), reps=2, seed=0)
        for x, name in winners(result).items():
            means = {
                n: result.stats[x][n].mean
                for n in result.definition.schedulers
            }
            assert means[name] == max(means.values())

    def test_parallel_matches_serial_bit_for_bit(self):
        definition = rate_sweep()
        serial = run_sweep(definition, reps=4, seed=5)
        parallel = run_sweep_parallel(
            definition, reps=4, seed=5, workers=2, chunk_size=1
        )
        _assert_bit_identical(parallel, serial)

    def test_validate_runs_stream_invariants(self):
        run_sweep(rate_sweep(), reps=2, seed=1, validate=True)

    def test_campaign_shard_merge_bit_identical_to_serial(self, tmp_path):
        definition = rate_sweep()
        campaign = Campaign.create(
            tmp_path / "camp",
            [definition],
            reps=4,
            n_shards=2,
            context=RunContext(seed=11, chunk_size=1),
        )
        for shard in range(campaign.n_shards):
            report = run_shard(campaign, shard)
            assert report.complete
        merged = merge(Campaign.open(tmp_path / "camp"))[definition.key]
        serial = run_sweep(definition, reps=4, seed=11)
        _assert_bit_identical(merged, serial)

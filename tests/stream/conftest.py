"""Shared builders for the job-stream arena tests."""

from __future__ import annotations

import numpy as np

from repro.experiments.graphspec import GraphSpec
from repro.stream import ArrivalSpec, StreamInstance, StreamJob, StreamSpec

#: the three policies every differential/property test exercises
ALL_POLICIES = ("OnlineHDLTS", "Static/HDLTS", "Static/HEFT")


def small_spec(
    *,
    n_jobs: int = 6,
    v: int = 10,
    n_procs: int = 3,
    ccr: float = 1.0,
    sigma: float = 0.0,
    kind: str = "poisson",
    rate: float = 0.02,
    interval: float = 50.0,
    axis: str = "rate",
) -> StreamSpec:
    """A small random-DAG stream spec (fast enough for unit tests)."""
    if kind == "poisson":
        arrival = ArrivalSpec("poisson", rate=rate)
    else:
        arrival = ArrivalSpec("deterministic", interval=interval)
    noise = {"kind": "gaussian", "sigma": sigma} if sigma else None
    return StreamSpec(
        job=GraphSpec("random", {"axis": "v", "n_procs": n_procs, "ccr": ccr}),
        arrival=arrival,
        n_jobs=n_jobs,
        axis=axis,
        job_x=v,
        noise=noise,
    )


def build_workload(seed: int, x: float = 0.02, **spec_kwargs) -> StreamInstance:
    """One materialized workload under the sweep RNG-key protocol."""
    spec = small_spec(**spec_kwargs)
    return spec.build(x, np.random.default_rng([seed, 0, 0]))


def lone_job_instance(
    seed: int, *, v: int = 12, n_procs: int = 3, ccr: float = 1.0,
    sigma: float = 0.0, arrival: float = 0.0,
) -> StreamInstance:
    """A single-job workload (the rate->0 limit) arriving at ``arrival``."""
    instance = build_workload(
        seed, n_jobs=1, v=v, n_procs=n_procs, ccr=ccr, sigma=sigma
    )
    job = instance.jobs[0]
    return StreamInstance(
        jobs=(StreamJob(0, arrival, job.graph, job.durations),),
        n_procs=instance.n_procs,
        busy_power=instance.busy_power,
        idle_power=instance.idle_power,
    )

"""Property suite for the job-stream arena.

Three families:

* **Conservation / feasibility** -- every arrived job finishes (or is
  explicitly lost under failures), no CPU runs two tasks at once across
  jobs, per-job precedence holds with realized data arrivals, CPU
  utilization never exceeds 1.  Checked through the stream invariant
  registry on randomized workloads (fixed seeds plus a Hypothesis sweep
  over the workload knobs).
* **Oracle sharpness** -- tampered executions (overlaps, precedence
  breaks, dropped finishes, over-unity utilization) must be *caught*.
* **Determinism & monotonicity** -- the same RNG key materializes the
  same workload; mean sojourn is non-decreasing as deterministic
  arrivals tighten (FIFO admission), with only endpoint dominance
  asserted for the online policy, whose priority order legitimately
  reshuffles under congestion (a scheduling anomaly, not a bug).
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dynamic.failures import FailStop
from repro.qa.invariants import (
    run_stream_invariants,
    stream_invariant_names,
)
from repro.stream import run_stream
from repro.stream.metrics import STREAM_METRICS
from tests.stream.conftest import ALL_POLICIES, build_workload, small_spec

_mean_sojourn = STREAM_METRICS["sojourn"]


# ----------------------------------------------------------------------
# conservation / feasibility over randomized workloads
# ----------------------------------------------------------------------
class TestInvariantsHold:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_poisson_streams_replay_clean(self, policy, seed):
        instance = build_workload(seed, n_jobs=5, sigma=0.2)
        result = run_stream(instance, policy)
        report = run_stream_invariants(instance, result)
        assert report.ok, "\n".join(report.all_problems())
        assert all(job.finished for job in result.jobs)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_burst_arrivals_replay_clean(self, policy):
        # every job arrives at t=0: maximum admission contention
        instance = build_workload(
            1, n_jobs=5, kind="deterministic", interval=0.0,
            axis="interval", x=0.0,
        )
        result = run_stream(instance, policy)
        report = run_stream_invariants(instance, result)
        assert report.ok, "\n".join(report.all_problems())

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_jobs=st.integers(min_value=1, max_value=5),
        v=st.integers(min_value=5, max_value=12),
        n_procs=st.integers(min_value=2, max_value=4),
        sigma=st.sampled_from((0.0, 0.2, 0.5)),
        rate=st.sampled_from((0.005, 0.02, 0.1)),
    )
    def test_hypothesis_workloads_replay_clean(
        self, seed, n_jobs, v, n_procs, sigma, rate
    ):
        instance = build_workload(
            seed, x=rate, n_jobs=n_jobs, v=v, n_procs=n_procs,
            sigma=sigma, rate=rate,
        )
        for policy in ALL_POLICIES:
            result = run_stream(instance, policy)
            report = run_stream_invariants(instance, result)
            assert report.ok, "\n".join(report.all_problems())

    def test_failures_lose_jobs_explicitly_not_silently(self):
        # both CPUs die early: every job must be accounted for as lost
        instance = build_workload(3, n_jobs=3, n_procs=2, v=8)
        failures = [FailStop(0, 1.0), FailStop(1, 1.0)]
        result = run_stream(instance, "OnlineHDLTS", failures=failures)
        assert len(result.lost_jobs()) == 3
        assert not result.finished_jobs()
        assert result.dead_procs == (0, 1)
        report = run_stream_invariants(instance, result)
        assert report.ok, "\n".join(report.all_problems())
        with pytest.raises(ValueError, match="no finished jobs"):
            _mean_sojourn(result)

    def test_partial_failure_keeps_survivors_feasible(self):
        instance = build_workload(4, n_jobs=4, n_procs=3, sigma=0.2)
        failures = [FailStop(0, 30.0)]
        result = run_stream(instance, "OnlineHDLTS", failures=failures)
        report = run_stream_invariants(instance, result)
        assert report.ok, "\n".join(report.all_problems())
        assert result.dead_procs == (0,)
        assert len(result.finished_jobs()) + len(result.lost_jobs()) == 4


# ----------------------------------------------------------------------
# the oracles must catch tampered executions
# ----------------------------------------------------------------------
class TestInvariantsCatchTampering:
    def _clean(self, seed=0):
        instance = build_workload(seed, n_jobs=3)
        return instance, run_stream(instance, "OnlineHDLTS")

    def test_registry_names(self):
        names = stream_invariant_names()
        assert "stream_conservation" in names
        assert "stream_no_overlap" in names
        assert "stream_precedence" in names
        assert "stream_utilization" in names

    def test_overlap_caught(self):
        instance, result = self._clean()
        # drag one record's start into its predecessor on the same CPU
        by_proc = {}
        victim = None
        for i, rec in enumerate(result.records):
            if rec.proc in by_proc:
                victim = i
                break
            by_proc[rec.proc] = rec
        assert victim is not None
        rec = result.records[victim]
        prev = by_proc[rec.proc]
        result.records[victim] = replace(
            rec, start=(prev.start + prev.finish) / 2.0
        )
        report = run_stream_invariants(
            instance, result, ["stream_no_overlap"]
        )
        assert not report.ok

    def test_precedence_break_caught(self):
        instance, result = self._clean(1)
        # pull a record of a data-bound task before time zero relative
        # to its job's arrival
        job = result.jobs[0]
        exit_task = max(job.finish_times, key=job.finish_times.get)
        for i, rec in enumerate(result.records):
            if rec.job == 0 and rec.task == exit_task and not rec.duplicate:
                result.records[i] = replace(
                    rec, start=job.arrival, finish=job.arrival + 1.0
                )
                break
        report = run_stream_invariants(
            instance, result, ["stream_precedence"]
        )
        assert not report.ok

    def test_dropped_finish_caught(self):
        instance, result = self._clean(2)
        job = result.jobs[0]
        task = next(iter(job.finish_times))
        del job.finish_times[task]
        report = run_stream_invariants(
            instance, result, ["stream_conservation"]
        )
        assert not report.ok

    def test_over_unity_utilization_caught(self):
        instance, result = self._clean(3)
        rec = result.records[0]
        result.records[0] = replace(
            rec, finish=result.horizon * 3.0, start=0.0
        )
        # exact results also fail no-overlap; utilization alone sees it
        result.exact = False
        report = run_stream_invariants(
            instance, result, ["stream_utilization"]
        )
        assert not report.ok

    def test_unknown_invariant_name_rejected(self):
        instance, result = self._clean(4)
        with pytest.raises(KeyError):
            run_stream_invariants(instance, result, ["no_such_invariant"])


# ----------------------------------------------------------------------
# determinism & monotonicity
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_rng_key_materializes_identical_workloads(self):
        spec = small_spec(n_jobs=4, sigma=0.3)
        a = spec.build(0.02, np.random.default_rng([7, 0, 0]))
        b = spec.build(0.02, np.random.default_rng([7, 0, 0]))
        assert [j.arrival for j in a.jobs] == [j.arrival for j in b.jobs]
        for ja, jb in zip(a.jobs, b.jobs):
            assert np.array_equal(ja.durations, jb.durations)
            assert ja.graph.cost_matrix().tolist() == (
                jb.graph.cost_matrix().tolist()
            )

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_rerun_is_bit_identical(self, policy):
        instance = build_workload(9, n_jobs=4, sigma=0.2)
        a = run_stream(instance, policy)
        b = run_stream(instance, policy)
        assert a.records == b.records
        assert a.horizon == b.horizon


class TestMonotonicity:
    INTERVALS = (200.0, 80.0, 30.0, 10.0, 0.0)

    def _means(self, policy, seed):
        spec = small_spec(
            n_jobs=6, sigma=0.2, kind="deterministic", axis="interval"
        )
        means = []
        for interval in self.INTERVALS:
            rng = np.random.default_rng([seed, 0, 0])
            instance = spec.build(interval, rng)
            means.append(_mean_sojourn(run_stream(instance, policy)))
        return means

    @pytest.mark.parametrize("policy", ("Static/HDLTS", "Static/HEFT"))
    @pytest.mark.parametrize("seed", range(4))
    def test_fifo_mean_sojourn_nondecreasing_in_load(self, policy, seed):
        """Tighter deterministic arrivals => same jobs wait longer.

        The static policies admit and commit FIFO, so the identical
        realized world under a shorter inter-arrival interval can only
        delay jobs.  (OnlineHDLTS re-prioritizes across admitted jobs,
        so mid-range anomalies are legitimate there -- see below.)
        """
        means = self._means(policy, seed)
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(means, means[1:])
        ), means

    @pytest.mark.parametrize("seed", range(4))
    def test_online_saturated_dominates_idle(self, seed):
        means = self._means("OnlineHDLTS", seed)
        assert means[-1] > means[0]

"""Per-job and fleet metrics over stream executions."""

import numpy as np
import pytest

from repro.stream import run_stream
from repro.stream.metrics import (
    STREAM_HIGHER_IS_BETTER,
    STREAM_METRICS,
    fleet_energy,
    per_job_busy_energy,
    queue_depth_series,
    register_stream_metric,
)
from tests.stream.conftest import ALL_POLICIES, build_workload


@pytest.fixture(scope="module")
def executed():
    instance = build_workload(6, n_jobs=5, sigma=0.2)
    return instance, run_stream(instance, "OnlineHDLTS")


class TestRegistry:
    def test_expected_metrics_registered(self):
        for name in (
            "sojourn", "p50_sojourn", "p95_sojourn", "p99_sojourn",
            "job_makespan", "throughput", "utilization", "queue_depth",
            "energy_per_job", "lost_jobs",
        ):
            assert name in STREAM_METRICS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_stream_metric("sojourn")(lambda result: 0.0)

    def test_orientation_sets_are_consistent(self):
        assert STREAM_HIGHER_IS_BETTER <= set(STREAM_METRICS)

    def test_every_metric_evaluates_finite(self, executed):
        _, result = executed
        for name, fn in STREAM_METRICS.items():
            value = fn(result)
            assert np.isfinite(value), name


class TestSojourns:
    def test_percentiles_are_ordered(self, executed):
        _, result = executed
        p50 = STREAM_METRICS["p50_sojourn"](result)
        p95 = STREAM_METRICS["p95_sojourn"](result)
        p99 = STREAM_METRICS["p99_sojourn"](result)
        assert p50 <= p95 <= p99

    def test_sojourn_bounds_job_makespan(self, executed):
        """Sojourn = wait + execution span, so it dominates makespan."""
        _, result = executed
        for job in result.finished_jobs():
            assert job.sojourn >= job.makespan - 1e-9
            assert job.wait == pytest.approx(job.sojourn - job.makespan)


class TestQueueDepth:
    def test_series_starts_and_ends_empty(self, executed):
        _, result = executed
        series = queue_depth_series(result)
        assert series[-1][1] == 0
        assert max(depth for _, depth in series) >= 1

    def test_depth_counts_arrived_unfinished_jobs(self, executed):
        _, result = executed
        series = queue_depth_series(result)
        # probe halfway between two events: depth there must equal the
        # direct count of jobs with arrival <= t < finish
        for (t0, depth), (t1, _) in zip(series, series[1:]):
            t = (t0 + t1) / 2.0
            direct = sum(
                1
                for job in result.jobs
                if job.arrival <= t
                and (job.finish if job.finished else result.horizon) > t
            )
            assert depth == direct

    def test_departures_processed_before_arrivals(self):
        """A job finishing exactly when another arrives frees its slot."""
        from repro.stream.arena import (
            JobResult,
            StreamResult,
        )

        jobs = [
            JobResult(0, 0.0, 1, True, False, finish=5.0, first_start=0.0),
            JobResult(1, 5.0, 1, True, False, finish=9.0, first_start=5.0),
        ]
        result = StreamResult(
            policy="OnlineHDLTS", n_procs=1, jobs=jobs, records=[],
            horizon=9.0, dead_procs=(), n_lost_dispatches=0, exact=True,
            busy_power=(), idle_power=(),
        )
        assert max(d for _, d in queue_depth_series(result)) == 1


class TestEnergy:
    def test_fleet_energy_accounting(self, executed):
        _, result = executed
        report = fleet_energy(result)
        assert report.total == pytest.approx(
            report.busy_energy + report.idle_energy
        )
        assert report.busy_energy > 0.0
        assert report.idle_energy >= 0.0
        assert report.makespan == result.horizon

    def test_per_job_energy_sums_to_fleet_busy(self, executed):
        _, result = executed
        per_job = per_job_busy_energy(result)
        assert set(per_job) == {job.job for job in result.jobs}
        assert sum(per_job.values()) == pytest.approx(
            fleet_energy(result).busy_energy
        )

    def test_busy_energy_bounded_by_full_occupancy(self, executed):
        instance, result = executed
        report = fleet_energy(result)
        ceiling = sum(
            result.horizon * p for p in instance.busy_power
        )
        assert report.busy_energy <= ceiling * (1.0 + 1e-9)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_energy_per_job_metric_matches_report(self, policy):
        instance = build_workload(2, n_jobs=4)
        result = run_stream(instance, policy)
        expected = fleet_energy(result).total / len(result.finished_jobs())
        assert STREAM_METRICS["energy_per_job"](result) == pytest.approx(
            expected
        )

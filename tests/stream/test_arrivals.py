"""Unit tests for the arrival-process specs."""

import numpy as np
import pytest

from repro.stream import ArrivalSpec


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="arrival kind"):
            ArrivalSpec("uniform", rate=1.0)

    def test_poisson_needs_positive_rate(self):
        with pytest.raises(ValueError):
            ArrivalSpec("poisson")
        with pytest.raises(ValueError):
            ArrivalSpec("poisson", rate=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec("poisson", rate=-1.0)

    def test_deterministic_needs_nonnegative_interval(self):
        with pytest.raises(ValueError):
            ArrivalSpec("deterministic")
        with pytest.raises(ValueError):
            ArrivalSpec("deterministic", interval=-0.5)
        # a zero interval (burst arrival) is legal
        ArrivalSpec("deterministic", interval=0.0)


class TestTimes:
    def test_poisson_times_are_strictly_positive_and_sorted(self):
        spec = ArrivalSpec("poisson", rate=0.1)
        times = spec.times(50, np.random.default_rng(0))
        assert times.shape == (50,)
        assert times[0] > 0.0
        assert np.all(np.diff(times) >= 0.0)

    def test_poisson_mean_gap_tracks_rate(self):
        spec = ArrivalSpec("poisson", rate=0.25)
        times = spec.times(4000, np.random.default_rng(1))
        gaps = np.diff(times)
        assert np.mean(gaps) == pytest.approx(4.0, rel=0.1)

    def test_deterministic_times_are_a_grid_from_zero(self):
        spec = ArrivalSpec("deterministic", interval=7.5)
        times = spec.times(4, np.random.default_rng(0))
        assert list(times) == [0.0, 7.5, 15.0, 22.5]

    def test_deterministic_consumes_no_rng(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        ArrivalSpec("deterministic", interval=2.0).times(10, rng)
        assert rng.bit_generator.state == before


class TestWithX:
    def test_rate_axis_on_poisson(self):
        spec = ArrivalSpec("poisson", rate=0.1).with_x("rate", 0.5)
        assert spec.kind == "poisson" and spec.rate == 0.5

    def test_interval_axis_on_deterministic(self):
        spec = ArrivalSpec("deterministic", interval=1.0).with_x("interval", 9.0)
        assert spec.kind == "deterministic" and spec.interval == 9.0

    def test_axis_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec("poisson", rate=0.1).with_x("interval", 9.0)
        with pytest.raises(ValueError):
            ArrivalSpec("deterministic", interval=1.0).with_x("rate", 0.5)


def test_dict_round_trip():
    for spec in (
        ArrivalSpec("poisson", rate=0.07),
        ArrivalSpec("deterministic", interval=12.0),
    ):
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec

"""Replay of the golden schedule corpus (and corpus plumbing tests).

Every entry under ``tests/corpus/*.jsonl`` is a concrete, shrunk
reproducer captured by the fuzz campaign or pinned by hand.  Replaying
them here -- unmarked, on every normal test run -- turns each one into a
permanent regression test.
"""

from pathlib import Path

import pytest

from repro.qa.corpus import (
    CorpusEntry,
    append_entries,
    read_corpus,
    replay_entry,
)

CORPUS_DIR = Path(__file__).parent / "corpus"


def _all_entries():
    entries = []
    for path in sorted(CORPUS_DIR.glob("*.jsonl")):
        for entry in read_corpus(path):
            entries.append(pytest.param(entry, id=f"{path.stem}:{entry.id}"))
    return entries


class TestCorpusReplay:
    def test_corpus_exists_and_is_nonempty(self):
        assert _all_entries(), "the golden corpus must never be empty"

    @pytest.mark.parametrize("entry", _all_entries())
    def test_entry_replays_clean(self, entry):
        problems = replay_entry(entry)
        assert problems == [], "\n".join(problems)


class TestCorpusPlumbing:
    def _entry(self, **overrides):
        from repro.io.json_io import graph_to_dict
        from repro.workflows.paper_example import paper_example_graph

        fields = dict(
            kind="golden",
            id="t-1",
            graph=graph_to_dict(paper_example_graph()),
            expected={"makespans": {"HDLTS": 73.0}},
        )
        fields.update(overrides)
        return CorpusEntry(**fields)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus kind"):
            self._entry(kind="mystery")

    def test_roundtrip_through_dict(self):
        entry = self._entry(
            scheduler="HDLTS",
            compiled=True,
            engine="fast",
            source="hand-pinned",
            problems=["was: off by one"],
            note="roundtrip",
        )
        again = CorpusEntry.from_dict(entry.to_dict())
        assert again == entry

    def test_to_dict_omits_unset_fields(self):
        data = self._entry().to_dict()
        for absent in ("scheduler", "compiled", "engine", "note", "problems"):
            assert absent not in data

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_corpus(tmp_path / "nope.jsonl") == []

    def test_append_then_read(self, tmp_path):
        path = tmp_path / "sub" / "c.jsonl"
        assert append_entries(path, [self._entry(), self._entry(id="t-2")]) == 2
        entries = read_corpus(path)
        assert [e.id for e in entries] == ["t-1", "t-2"]

    def test_golden_without_pins_is_a_problem(self):
        entry = self._entry(expected={})
        assert any("pins no makespans" in p for p in replay_entry(entry))

    def test_golden_wrong_pin_is_caught(self):
        entry = self._entry(expected={"makespans": {"HDLTS": 99.0}})
        assert any("!= pinned" in p for p in replay_entry(entry))

    def test_golden_fig1_hdlts_replays_clean(self):
        assert replay_entry(self._entry()) == []

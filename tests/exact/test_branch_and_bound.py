"""Unit tests for the exact branch-and-bound scheduler."""

import numpy as np
import pytest

from repro.baselines.registry import make_scheduler
from repro.exact.branch_and_bound import (
    BranchAndBound,
    SearchBudgetExceeded,
    optimal_makespan,
)
from repro.model.task_graph import TaskGraph
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


class TestSmallInstances:
    def test_single_task(self, single_task):
        assert optimal_makespan(single_task) == 3.0

    def test_diamond_by_hand(self, diamond):
        """Optimal for the diamond fixture, verified by enumeration
        logic: A on P1 (2), C on P1 (2->6), B on P1 (6->9), D on P1
        (9->11)=11 is beaten by A:P1[0,2) B:P1[2,5) C:P2[3,7) D:P2[7,9) = 9."""
        opt, schedule = BranchAndBound().solve(diamond)
        validate_schedule(diamond, schedule)
        assert opt == pytest.approx(9.0)

    def test_chain_optimal_is_single_cpu_dynamic_program(self, chain):
        """For a chain, eager enumeration must match the DP over
        (task, cpu) with comm on CPU switches."""
        # DP
        import math

        costs = [list(chain.cost_row(t)) for t in chain.tasks()]
        comm = [chain.comm_cost(t, t + 1) for t in range(chain.n_tasks - 1)]
        best = costs[0][:]
        for i in range(1, chain.n_tasks):
            nxt = [math.inf] * chain.n_procs
            for p in range(chain.n_procs):
                for q in range(chain.n_procs):
                    arrival = best[q] + (0 if p == q else comm[i - 1])
                    nxt[p] = min(nxt[p], arrival + costs[i][p])
            best = nxt
        assert optimal_makespan(chain) == pytest.approx(min(best))

    def test_parallel_tasks_spread_across_cpus(self):
        graph = TaskGraph(2)
        for _ in range(2):
            graph.add_task([4, 4])
        assert optimal_makespan(graph) == pytest.approx(4.0)


class TestFig1:
    def test_nodup_optimum_is_73(self, fig1):
        """The optimal no-duplication makespan on the paper's example is
        73 -- HDLTS's published 73 (via entry duplication) exactly ties
        the best any non-duplicating schedule can do, while HEFT (80),
        PETS (77) and PEFT (86) all leave real optimality gaps."""
        opt, schedule = BranchAndBound().solve(fig1, upper_bound=80.0)
        validate_schedule(fig1, schedule)
        assert opt == pytest.approx(73.0)

    def test_hdlts_matches_nodup_optimum(self, fig1):
        from repro.core import HDLTS

        assert HDLTS().run(fig1).makespan == pytest.approx(73.0)


class TestHeuristicGaps:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_heuristic_beats_optimal_without_duplication(self, seed):
        graph = make_random_graph(seed=seed, v=8, n_procs=3, ccr=2.0)
        opt = optimal_makespan(graph)
        for name in ("HEFT", "PETS", "PEFT", "CPOP", "DLS", "LA-HEFT"):
            makespan = make_scheduler(name).run(graph).makespan
            assert makespan >= opt - 1e-6, name

    @pytest.mark.parametrize("seed", range(5))
    def test_heuristics_land_within_2x_of_optimal(self, seed):
        graph = make_random_graph(seed=seed, v=8, n_procs=3, ccr=2.0)
        opt = optimal_makespan(graph)
        for name in ("HDLTS", "HEFT", "SDBATS"):
            makespan = make_scheduler(name).run(graph).makespan
            assert makespan <= 2.0 * opt + 1e-6, name

    def test_upper_bound_seed_preserves_optimum(self):
        graph = make_random_graph(seed=11, v=8, n_procs=3, ccr=2.0)
        loose = optimal_makespan(graph)
        tight = optimal_makespan(graph, upper_bound=loose * 1.01)
        assert loose == pytest.approx(tight)


class TestBudget:
    def test_budget_exceeded_raises(self, fig1):
        with pytest.raises(SearchBudgetExceeded):
            BranchAndBound(max_states=10).solve(fig1)

    def test_states_counted(self, diamond):
        solver = BranchAndBound()
        solver.solve(diamond)
        assert solver.states_explored > 0

"""Unit tests for the invariant oracle registry.

Two halves: (a) every invariant passes on known-good schedules from every
registered scheduler; (b) every invariant catches a hand-crafted
corruption of exactly the kind it exists to see.
"""

import pytest

from repro.baselines.registry import SCHEDULER_FACTORIES, make_scheduler
from repro.qa.invariants import (
    GENERAL_DUPLICATION,
    INVARIANTS,
    invariant_names,
    invariants_for,
    register_invariant,
    run_invariants,
)
from repro.schedule.schedule import Schedule
from repro.schedule.validation import ScheduleError


EXPECTED_NAMES = [
    "feasibility",
    "cp_lower_bound",
    "work_lower_bound",
    "work_upper_bound",
    "duplicate_consistency",
    "entry_duplication",
    "metrics_consistency",
    "simulator_replay",
]


class TestRegistry:
    def test_builtin_names_registered_in_order(self):
        assert invariant_names() == EXPECTED_NAMES

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_invariant("feasibility", "dupe")(lambda g, s: [])

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="no_such_invariant"):
            run_invariants(None, None, names=["no_such_invariant"])

    def test_invariants_for_exempts_general_duplication(self):
        assert "DHEFT" in GENERAL_DUPLICATION
        assert "entry_duplication" not in invariants_for("DHEFT")
        assert set(invariants_for("DHEFT")) == set(EXPECTED_NAMES) - {
            "entry_duplication"
        }
        assert invariants_for("HDLTS") == EXPECTED_NAMES
        # case-insensitive prefix match
        assert "entry_duplication" not in invariants_for("dheft")

    def test_subset_selection(self, fig1):
        schedule = make_scheduler("HDLTS").run(fig1).schedule
        report = run_invariants(fig1, schedule, names=["feasibility"])
        assert report.checked == ("feasibility",)
        assert report.ok


class TestKnownGoodSchedules:
    def test_every_registered_scheduler_passes(self, fig1):
        for name, factory in SCHEDULER_FACTORIES.items():
            scheduler = factory()
            prepared = scheduler.prepare(fig1)
            schedule = scheduler.build_schedule(prepared)
            report = run_invariants(prepared, schedule, invariants_for(name))
            assert report.ok, f"{name}: {report.format()}"

    def test_report_format_and_raise(self, fig1):
        schedule = make_scheduler("HDLTS").run(fig1).schedule
        report = run_invariants(fig1, schedule)
        assert "invariants hold" in report.format()
        report.raise_if_failed()  # must not raise

    def test_random_graph_passes(self):
        from tests.conftest import make_random_graph

        graph = make_random_graph(seed=7, v=30, n_procs=3)
        schedule = make_scheduler("HEFT").run(graph).schedule
        assert run_invariants(graph, schedule).ok


def _violations(graph, schedule, name):
    report = run_invariants(graph, schedule, names=[name])
    return report.violations.get(name, [])


class TestEachInvariantCatchesItsCorruption:
    def test_feasibility_missing_task(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        problems = _violations(diamond, schedule, "feasibility")
        assert any("not scheduled" in p for p in problems)

    def test_cp_lower_bound_catches_impossibly_fast_schedule(self, diamond):
        # every task squeezed into a sliver: beats the min-cost chain
        schedule = Schedule(diamond)
        for i, task in enumerate(diamond.tasks()):
            schedule.place(task, 0, i * 0.01, duration=0.01)
        assert _violations(diamond, schedule, "cp_lower_bound")

    def test_work_lower_bound_catches_impossibly_fast_schedule(self, diamond):
        schedule = Schedule(diamond)
        for i, task in enumerate(diamond.tasks()):
            schedule.place(task, 0, i * 0.01, duration=0.01)
        assert _violations(diamond, schedule, "work_lower_bound")

    def test_work_upper_bound_catches_uncovered_idle_time(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 1, 3.0)
        schedule.place(3, 1, 1e6)  # a day of unexplained idle time
        assert _violations(diamond, schedule, "work_upper_bound")

    def test_duplicate_without_primary(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 1, 3.0)
        schedule.place(3, 1, 7.0)
        # a duplicate of a task is legal; one with no primary is not --
        # remove the primary after committing the duplicate
        schedule.place(2, 0, 5.0, duplicate=True)
        schedule.unplace(2)
        problems = _violations(diamond, schedule, "duplicate_consistency")
        assert any("no primary copy" in p for p in problems)

    def test_two_copies_on_one_cpu(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(0, 0, 10.0, duplicate=True)  # same CPU, again
        schedule.place(1, 0, 2.0)
        schedule.place(2, 1, 3.0)
        schedule.place(3, 1, 7.0)
        problems = _violations(diamond, schedule, "duplicate_consistency")
        assert any("two copies on one CPU" in p for p in problems)

    def test_entry_duplication_rejects_non_entry_duplicate(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 1, 3.0)
        schedule.place(2, 0, 5.0, duplicate=True)  # C has a parent
        schedule.place(3, 1, 7.0)
        problems = _violations(diamond, schedule, "entry_duplication")
        assert any("entry tasks only" in p for p in problems)

    def test_entry_duplication_rejects_late_window(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(0, 1, 5.0, duplicate=True)  # entry, but not [0, W)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 1, 9.0)
        schedule.place(3, 1, 13.0)
        problems = _violations(diamond, schedule, "entry_duplication")
        assert any("[0, W)" in p for p in problems)

    def test_metrics_consistency_catches_slr_below_one(self, diamond):
        schedule = Schedule(diamond)
        for i, task in enumerate(diamond.tasks()):
            schedule.place(task, 0, i * 0.01, duration=0.01)
        problems = _violations(diamond, schedule, "metrics_consistency")
        assert any("SLR" in p for p in problems)

    def test_simulator_replay_catches_early_start(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)   # A finish 2; B's data reaches P2 at 7
        schedule.place(1, 1, 1.0)   # B starts on P2 before its data
        schedule.place(2, 1, 3.0)
        schedule.place(3, 1, 7.0)
        assert _violations(diamond, schedule, "simulator_replay")

    def test_checks_run_independently(self, diamond):
        """A feasibility failure doesn't suppress the bound checks."""
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0, duration=0.01)
        schedule.place(1, 0, 0.02, duration=0.01)
        schedule.place(2, 0, 0.04, duration=0.01)
        schedule.place(3, 0, 0.06, duration=0.01)
        report = run_invariants(diamond, schedule)
        assert "feasibility" in report.violations
        assert "cp_lower_bound" in report.violations
        problems = report.all_problems()
        assert any(p.startswith("[feasibility]") for p in problems)
        with pytest.raises(ScheduleError):
            report.raise_if_failed()

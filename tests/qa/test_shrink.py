"""Unit tests for the greedy graph shrinker."""

import numpy as np

from repro.model.task_graph import TaskGraph
from repro.qa.shrink import shrink_graph
from tests.conftest import make_random_graph


def test_shrinks_task_count_to_predicate_minimum():
    graph = make_random_graph(seed=0, v=30, n_procs=3)
    shrunk = shrink_graph(graph, lambda g: g.n_tasks >= 5)
    assert shrunk.n_tasks == 5
    assert shrunk.n_procs >= 1


def test_shrinks_cpu_columns():
    graph = make_random_graph(seed=1, v=10, n_procs=4)
    shrunk = shrink_graph(graph, lambda g: g.n_procs >= 2)
    assert shrunk.n_procs == 2


def test_drops_edges_and_zeroes_comm():
    graph = make_random_graph(seed=2, v=12, n_procs=3)
    assert graph.n_edges > 1
    shrunk = shrink_graph(
        graph, lambda g: any(e.cost > 0 for e in g.edges())
    )
    # one costly edge is all the predicate needs
    assert sum(1 for e in shrunk.edges() if e.cost > 0) == 1
    assert shrunk.n_tasks == 2


def test_result_always_satisfies_predicate():
    graph = make_random_graph(seed=3, v=20, n_procs=3)
    total = graph.cost_matrix().sum()
    predicate = lambda g: g.cost_matrix().sum() >= total * 0.25
    shrunk = shrink_graph(graph, predicate)
    assert predicate(shrunk)
    assert shrunk.n_tasks <= graph.n_tasks


def test_exception_in_predicate_means_does_not_fail():
    graph = make_random_graph(seed=4, v=8, n_procs=2)

    def explosive(candidate: TaskGraph) -> bool:
        if candidate.n_tasks < graph.n_tasks:
            raise RuntimeError("boom")
        return True

    shrunk = shrink_graph(graph, explosive)
    # every task removal "did not fail" (raised), so none were kept
    assert shrunk.n_tasks == graph.n_tasks


def test_rounds_costs_to_integers_when_allowed():
    graph = make_random_graph(seed=5, v=6, n_procs=2)
    shrunk = shrink_graph(graph, lambda g: g.n_tasks >= 2)
    costs = shrunk.cost_matrix()
    assert np.allclose(costs, np.round(costs))


def test_attempt_budget_respected():
    graph = make_random_graph(seed=6, v=25, n_procs=3)
    calls = []

    def counting(candidate: TaskGraph) -> bool:
        calls.append(1)
        return candidate.n_tasks >= 2

    shrink_graph(graph, counting, max_attempts=10)
    assert len(calls) <= 11  # budget, plus at most one fixpoint recheck

"""Unit tests for the metamorphic transform battery."""

import numpy as np
import pytest

from repro.baselines.registry import make_scheduler
from repro.model.task_graph import TaskGraph
from repro.qa.metamorphic import (
    DEFAULT_TRANSFORMS,
    CcrRescale,
    CpuPermutation,
    TaskRelabeling,
    UniformScaling,
    ZeroCostEdgeInsertion,
    run_metamorphic,
    schedule_signature,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestTransformGuards:
    def test_uniform_scaling_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            UniformScaling(3.0)
        UniformScaling(0.25)  # negative powers are fine

    def test_ccr_rescale_requires_factor_at_least_one(self):
        with pytest.raises(ValueError, match="factor >= 1"):
            CcrRescale(0.5)

    def test_relabeling_skips_tiny_graphs(self, rng):
        graph = TaskGraph(2)
        a = graph.add_task([1, 2])
        b = graph.add_task([2, 1])
        graph.add_edge(a, b, 1.0)
        assert TaskRelabeling().derive(graph, rng) is None

    def test_relabeling_skips_multi_exit_graphs(self, rng):
        # two exit tasks -> two all-zero OCT rows -> structural ties
        graph = TaskGraph(2)
        a = graph.add_task([1.0, 2.0])
        b = graph.add_task([2.0, 1.5])
        c = graph.add_task([1.5, 2.5])
        graph.add_edge(a, b, 1.0)
        graph.add_edge(a, c, 2.0)
        assert TaskRelabeling().derive(graph, rng) is None

    def test_relabeling_excludes_tie_prone_schedulers(self):
        transform = TaskRelabeling()
        assert not transform.applies_to("PEFT")
        assert not transform.applies_to("CPOP")
        assert not transform.applies_to("peft-lookahead")
        assert transform.applies_to("HDLTS")
        assert transform.applies_to("HEFT")

    def test_cpu_permutation_skips_single_cpu(self, rng):
        graph = TaskGraph(1)
        graph.add_task([1.0])
        assert CpuPermutation().derive(graph, rng) is None

    def test_zero_cost_edge_needs_distance_two_descendant(self, rng):
        graph = TaskGraph(2)
        a = graph.add_task([1, 2])
        b = graph.add_task([2, 1])
        graph.add_edge(a, b, 1.0)  # no path of length >= 2 anywhere
        assert ZeroCostEdgeInsertion().derive(graph, rng) is None

    def test_ccr_rescale_skips_edgeless_graphs(self, rng):
        graph = TaskGraph(2)
        graph.add_task([1, 2])
        assert CcrRescale(2.0).derive(graph, rng) is None


class TestRelationsHold:
    """The battery assumes continuous (tie-free) costs, as drawn by the
    fuzz campaign's generator: on integer-cost graphs like Fig. 1, equal
    EFTs across CPUs tie-break by processor index and a permuted column
    can legitimately land elsewhere."""

    @pytest.mark.parametrize("name", ["HDLTS", "HEFT"])
    def test_battery_clean_on_random_graphs(self, name, rng):
        from tests.conftest import make_random_graph

        for seed in (11, 23):
            graph = make_random_graph(seed=seed, v=20, n_procs=3)
            results = run_metamorphic(
                lambda: make_scheduler(name), graph, rng, scheduler_name=name
            )
            assert len(results) == len(DEFAULT_TRANSFORMS)
            for result in results:
                assert result.ok, (
                    f"{name}/{result.transform}: {result.problems}"
                )
            assert any(r.applied for r in results)

    def test_tie_prone_scheduler_gets_relabeling_skipped(self, rng):
        from tests.conftest import make_random_graph

        graph = make_random_graph(seed=11, v=20, n_procs=3)
        results = run_metamorphic(
            lambda: make_scheduler("PEFT"), graph, rng, scheduler_name="PEFT"
        )
        by_name = {r.transform: r for r in results}
        assert not by_name["task_relabeling"].applied
        assert by_name["task_relabeling"].ok
        # the other transforms still apply and still hold
        assert by_name["cpu_permutation"].applied
        assert all(r.ok for r in results)

    def test_scaling_catches_a_lying_scheduler(self, fig1, rng):
        """A scheduler whose makespan ignores the costs must be flagged."""

        class Liar:
            def prepare(self, graph):
                return graph

            def build_schedule(self, graph):
                from repro.schedule.schedule import Schedule

                schedule = Schedule(graph)
                t = 0.0
                for task in graph.tasks():
                    schedule.place(task, 0, t, duration=1.0)  # fixed lie
                    t += 1.0
                return schedule

        results = run_metamorphic(lambda: Liar(), fig1, rng)
        scale = [r for r in results if r.transform == "scale_x2" and r.applied]
        assert scale and not scale[0].ok


class TestScheduleSignature:
    def test_identical_rebuilds_share_a_signature(self, fig1):
        a = make_scheduler("HDLTS").run(fig1).schedule
        b = make_scheduler("HDLTS").run(fig1).schedule
        assert schedule_signature(a) == schedule_signature(b)

    def test_signature_sees_every_copy(self, diamond):
        from repro.schedule.schedule import Schedule

        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(0, 1, 0.0, duplicate=True)
        sig = schedule_signature(schedule)
        assert len(sig[0]) == 2
        assert {entry[0] for entry in sig[0]} == {0, 1}

"""Tests for the fuzz campaign driver.

The quick campaigns here run unmarked (they are the smoke test that the
driver itself works); the broad campaign at the bottom carries the
``fuzz`` marker and only runs when explicitly selected (``-m fuzz``),
e.g. by the nightly CI job.
"""

import numpy as np
import pytest

from repro.qa.corpus import read_corpus, replay_entry
from repro.qa.fuzz import FuzzConfig, _draw_graph, run_campaign


class TestConfig:
    def test_default_schedulers_is_whole_registry(self):
        from repro.baselines.registry import SCHEDULER_FACTORIES

        assert FuzzConfig().scheduler_names() == list(SCHEDULER_FACTORIES)

    def test_unknown_inject_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown inject mode"):
            run_campaign(FuzzConfig(instances=1, inject="swap-cpus"))

    def test_instances_replay_deterministically(self):
        config = FuzzConfig(seed=3)
        a = _draw_graph(np.random.default_rng([3, 7]), 7, config)
        b = _draw_graph(np.random.default_rng([3, 7]), 7, config)
        assert np.array_equal(a.cost_matrix(), b.cost_matrix())
        assert [(e.src, e.dst, e.cost) for e in a.edges()] == [
            (e.src, e.dst, e.cost) for e in b.edges()
        ]


class TestQuickCampaign:
    def test_small_campaign_is_green(self):
        config = FuzzConfig(
            instances=4,
            seed=1,
            schedulers=["HDLTS", "HEFT", "CPOP"],
            metamorphic_every=2,
            metamorphic_schedulers=("HDLTS", "CPOP"),
        )
        report = run_campaign(config)
        assert report.ok, report.format()
        assert report.instances == 4
        assert report.builds > 0
        assert report.exact_checks > 0  # instances 0 and 3 are tiny
        assert report.metamorphic_runs == 4  # 2 schedulers x instances 0, 2
        assert "0 violations" in report.format()

    def test_progress_callback_fires(self):
        lines = []
        run_campaign(
            FuzzConfig(instances=10, seed=2, schedulers=["HEFT"], exact=False),
            progress=lines.append,
        )
        assert lines and "[10/10]" in lines[0]


class TestInjection:
    @pytest.mark.parametrize("mode", ["wrong-duration", "early-start"])
    def test_injected_corruption_is_caught(self, mode):
        config = FuzzConfig(
            instances=2,
            seed=0,
            schedulers=["HDLTS"],
            inject=mode,
            exact=False,
            shrink=False,
        )
        report = run_campaign(config)
        assert not report.ok
        # every corrupted build must be flagged (injection may skip a
        # degenerate schedule, but then it leaves a note, not silence)
        assert len(report.violations) + len(report.notes) >= report.builds
        for violation in report.violations:
            assert violation.stage == "invariant"
            assert violation.problems

    def test_injected_violation_is_shrunk_and_replayable(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        config = FuzzConfig(
            instances=1,
            seed=0,
            schedulers=["HDLTS"],
            inject="wrong-duration",
            exact=False,
            corpus_path=str(corpus),
        )
        report = run_campaign(config)
        assert not report.ok
        violation = report.violations[0]
        assert violation.shrunk_tasks is not None
        assert violation.shrunk_tasks <= violation.graph_tasks
        assert violation.corpus_id is not None

        entries = read_corpus(corpus)
        assert len(entries) == len(report.violations)
        entry = entries[0]
        assert entry.kind == "violation"
        assert entry.id == violation.corpus_id
        assert entry.scheduler == "HDLTS"
        assert len(entry.graph["tasks"]) == violation.shrunk_tasks
        # the clean build on the shrunk graph passes every invariant:
        # the corpus entry guards against a *real* regression appearing
        assert replay_entry(entry) == []


class TestGoldenEmission:
    def test_golden_entries_pin_default_combo_makespans(self, tmp_path):
        golden = tmp_path / "golden.jsonl"
        config = FuzzConfig(
            instances=2,
            seed=5,
            schedulers=["HDLTS", "HEFT"],
            exact=False,
            metamorphic_every=0,
            golden_path=str(golden),
        )
        report = run_campaign(config)
        assert report.ok
        entries = read_corpus(golden)
        assert len(entries) == 2
        for entry in entries:
            assert entry.kind == "golden"
            assert set(entry.expected["makespans"]) == {"HDLTS", "HEFT"}
            assert replay_entry(entry) == []


@pytest.mark.fuzz
class TestBroadCampaign:
    def test_full_registry_campaign(self):
        """The nightly sweep: every scheduler, every combo, exact oracle."""
        report = run_campaign(FuzzConfig(instances=50, seed=0))
        assert report.ok, report.format()

"""Unit tests for Table II parameter handling."""

import pytest

from repro.generator.parameters import TABLE_II, GeneratorConfig, iter_table_ii


class TestConfig:
    def test_defaults_are_midrange(self):
        cfg = GeneratorConfig()
        assert cfg.v == 100 and cfg.n_procs == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"v": 0},
            {"alpha": 0},
            {"alpha": -1.0},
            {"density": 0},
            {"ccr": -0.5},
            {"n_procs": 0},
            {"w_dag": 0},
            {"beta": 2.5},
            {"beta": -0.1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)

    def test_with_updates_functionally(self):
        cfg = GeneratorConfig()
        new = cfg.with_(ccr=4.0)
        assert new.ccr == 4.0 and cfg.ccr == 1.0
        assert new.v == cfg.v

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GeneratorConfig().v = 7


class TestTableII:
    def test_published_grid_verbatim(self):
        assert TABLE_II["v"] == (100, 200, 300, 400, 500, 1000, 5000, 10000)
        assert TABLE_II["alpha"] == (0.5, 1.0, 1.5, 2.0, 2.5)
        assert TABLE_II["density"] == (1, 2, 3, 4, 5)
        assert TABLE_II["ccr"] == (1.0, 2.0, 3.0, 4.0, 5.0)
        assert TABLE_II["n_procs"] == (2, 4, 6, 8, 10)
        assert TABLE_II["w_dag"] == (50, 60, 70, 80, 90, 100)
        assert TABLE_II["beta"] == (0.4, 0.8, 1.2, 1.6, 2.0)

    def test_full_grid_size(self):
        """The paper quotes '125K unique graphs'; the literal Table II
        cross product is 8*5*5*5*5*6*5 = 150,000 (the 125K figure assumes
        five W_dag values -- the table lists six).  We keep the table
        verbatim and note the arithmetic discrepancy here."""
        total = 1
        for values in TABLE_II.values():
            total *= len(values)
        assert total == 150_000

    def test_iter_respects_overrides(self):
        configs = list(
            iter_table_ii(
                {
                    "v": (100,),
                    "alpha": (1.0,),
                    "density": (3,),
                    "ccr": (1.0, 5.0),
                    "n_procs": (4,),
                    "w_dag": (50,),
                    "beta": (1.2,),
                }
            )
        )
        assert len(configs) == 2
        assert {c.ccr for c in configs} == {1.0, 5.0}
        assert all(c.v == 100 for c in configs)

    def test_iter_rejects_unknown_axis(self):
        with pytest.raises(KeyError, match="unknown Table II axes"):
            next(iter_table_ii({"bogus": (1,)}))

    def test_iter_yields_valid_configs(self):
        for config in iter_table_ii({k: v[:1] for k, v in TABLE_II.items()}):
            assert isinstance(config, GeneratorConfig)

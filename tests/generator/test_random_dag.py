"""Unit tests for the random DAG generator's structure and cost model."""

import numpy as np
import pytest

from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import RandomDAGGenerator, generate_random_graph
from repro.model.levels import graph_height, graph_width
from repro.model.validation import validate_task_graph


class TestStructure:
    @pytest.mark.parametrize("v", [1, 2, 5, 50, 500])
    def test_exact_task_count(self, v, rng):
        graph = generate_random_graph(GeneratorConfig(v=v), rng)
        assert graph.n_tasks == v

    def test_always_acyclic_and_connected(self, rng):
        for seed in range(10):
            graph = generate_random_graph(
                GeneratorConfig(v=80), np.random.default_rng(seed)
            )
            validate_task_graph(graph)

    def test_alpha_controls_shape(self):
        """Small alpha -> tall thin graphs; large alpha -> short fat."""
        heights = {}
        widths = {}
        for alpha in (0.5, 2.5):
            hs, ws = [], []
            for seed in range(10):
                graph = generate_random_graph(
                    GeneratorConfig(v=400, alpha=alpha),
                    np.random.default_rng(seed),
                )
                hs.append(graph_height(graph))
                ws.append(graph_width(graph))
            heights[alpha] = np.mean(hs)
            widths[alpha] = np.mean(ws)
        assert heights[0.5] > heights[2.5]
        assert widths[0.5] < widths[2.5]

    def test_density_controls_edge_count(self):
        counts = {}
        for density in (1, 5):
            totals = [
                generate_random_graph(
                    GeneratorConfig(v=200, density=density),
                    np.random.default_rng(seed),
                ).n_edges
                for seed in range(5)
            ]
            counts[density] = np.mean(totals)
        assert counts[5] > 2 * counts[1]

    def test_level_sizes_sum_to_v(self, rng):
        generator = RandomDAGGenerator(GeneratorConfig(v=137, alpha=1.5))
        for _ in range(20):
            sizes = generator.level_sizes(rng)
            assert sum(sizes) == 137
            assert all(s >= 1 for s in sizes)

    def test_every_non_first_level_task_has_parent(self, rng):
        graph = generate_random_graph(GeneratorConfig(v=150), rng)
        from repro.model.levels import task_levels

        levels = task_levels(graph)
        for task in graph.tasks():
            if levels[task] > 0:
                assert graph.in_degree(task) >= 1

    def test_single_task_graph(self, rng):
        graph = generate_random_graph(GeneratorConfig(v=1), rng)
        assert graph.n_tasks == 1 and graph.n_edges == 0


class TestCosts:
    def test_eq13_bounds(self, rng):
        """Per-CPU costs stay within w_i * (1 -+ beta/2) of the draw's
        mean -- verified through the realized spread."""
        config = GeneratorConfig(v=300, beta=0.4, w_dag=50)
        graph = generate_random_graph(config, rng)
        w = graph.cost_matrix()
        means = w.mean(axis=1)
        nonzero = means > 1e-9
        spread = (w.max(axis=1) - w.min(axis=1))[nonzero] / means[nonzero]
        # beta = 0.4: total width of the uniform support is 0.4 * w_i;
        # realized mean differs from w_i, allow slack
        assert spread.max() <= 0.55

    def test_beta_zero_is_homogeneous(self, rng):
        graph = generate_random_graph(GeneratorConfig(v=50, beta=0.0), rng)
        w = graph.cost_matrix()
        assert np.allclose(w, w[:, :1])

    def test_w_dag_scales_mean_cost(self):
        means = {}
        for w_dag in (50, 100):
            graph = generate_random_graph(
                GeneratorConfig(v=500, w_dag=w_dag), np.random.default_rng(0)
            )
            means[w_dag] = graph.cost_matrix().mean()
        assert means[100] > 1.5 * means[50]

    def test_eq14_comm_cost_proportional_to_source_mean(self, rng):
        """All out-edges of one task carry the same cost: w_i * CCR."""
        graph = generate_random_graph(GeneratorConfig(v=100, ccr=3.0), rng)
        for task in graph.tasks():
            succs = graph.successors(task)
            if len(succs) >= 2:
                costs = {graph.comm_cost(task, s) for s in succs}
                assert len(costs) == 1

    def test_realized_ccr_approximates_requested(self):
        for ccr in (1.0, 5.0):
            graph = generate_random_graph(
                GeneratorConfig(v=1000, ccr=ccr), np.random.default_rng(1)
            )
            comp = graph.cost_matrix().mean()
            comm = np.mean([e.cost for e in graph.edges()])
            assert comm / comp == pytest.approx(ccr, rel=0.25)

    def test_ccr_zero_means_free_communication(self, rng):
        graph = generate_random_graph(GeneratorConfig(v=50, ccr=0.0), rng)
        assert all(e.cost == 0.0 for e in graph.edges())


class TestDeterminism:
    def test_same_seed_same_graph(self):
        config = GeneratorConfig(v=80, ccr=2.0)
        a = generate_random_graph(config, np.random.default_rng(7))
        b = generate_random_graph(config, np.random.default_rng(7))
        assert a.n_edges == b.n_edges
        assert np.allclose(a.cost_matrix(), b.cost_matrix())
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        config = GeneratorConfig(v=80)
        a = generate_random_graph(config, np.random.default_rng(1))
        b = generate_random_graph(config, np.random.default_rng(2))
        assert not np.allclose(a.cost_matrix(), b.cost_matrix())


class TestSingleEntry:
    def test_single_entry_flag_forces_one_entry(self):
        for seed in range(8):
            graph = generate_random_graph(
                GeneratorConfig(v=60, alpha=1.5, single_entry=True),
                np.random.default_rng(seed),
            )
            assert len(graph.entry_tasks()) == 1
            validate_task_graph(graph, require_single_entry=True)

    def test_single_entry_preserves_task_count(self, rng):
        graph = generate_random_graph(
            GeneratorConfig(v=77, single_entry=True), rng
        )
        assert graph.n_tasks == 77

    def test_default_allows_multiple_entries(self):
        counts = [
            len(
                generate_random_graph(
                    GeneratorConfig(v=100, alpha=2.0),
                    np.random.default_rng(seed),
                ).entry_tasks()
            )
            for seed in range(6)
        ]
        assert max(counts) > 1

    def test_entry_has_real_costs(self, rng):
        graph = generate_random_graph(
            GeneratorConfig(v=60, single_entry=True), rng
        )
        # drawn from U(0, 2 W_dag): almost surely positive
        assert graph.cost_row(graph.entry_task).max() > 0


class TestWeightedSampler:
    """Oracle tests for the hoisted-CDF weighted sampler.

    ``_weighted_sample_noreplace`` re-implements
    ``Generator.choice(n, size=k, replace=False, p=w)`` so the per-source
    CDF can be shared across calls; it must consume the *exact* same
    random stream and return the *exact* same indices as the numpy
    original, or every downstream sweep result shifts.
    """

    @staticmethod
    def _paired_rngs(state):
        a = np.random.default_rng()
        a.bit_generator.state = state
        b = np.random.default_rng()
        b.bit_generator.state = state
        return a, b

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_generator_choice_draw_exact(self, seed):
        from repro.generator.random_dag import _weighted_sample_noreplace

        outer = np.random.default_rng(seed)
        for _ in range(60):
            n = int(outer.integers(1, 12))
            k = int(outer.integers(1, n + 1))
            # cubed uniforms: heavily skewed weights force the
            # collision-retry branch of the rejection loop
            raw = outer.random(n) ** 3 + 1e-9
            weights = raw / raw.sum()
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            a, b = self._paired_rngs(outer.bit_generator.state)
            expected = a.choice(n, size=k, replace=False, p=weights)
            got = _weighted_sample_noreplace(b, k, cdf, weights)
            assert got.tolist() == expected.tolist()
            # the streams must also END in the same place, else the
            # next draw in the generator diverges silently
            assert a.bit_generator.state == b.bit_generator.state
            outer = a

    def test_exhaustive_draw_with_near_degenerate_weights(self):
        """k == n with one dominant weight maximizes retry rounds."""
        from repro.generator.random_dag import _weighted_sample_noreplace

        n = 6
        weights = np.array([0.95, 0.01, 0.01, 0.01, 0.01, 0.01])
        weights /= weights.sum()
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        for seed in range(30):
            state = np.random.default_rng(seed).bit_generator.state
            a, b = self._paired_rngs(state)
            expected = a.choice(n, size=n, replace=False, p=weights)
            got = _weighted_sample_noreplace(b, n, cdf, weights)
            assert got.tolist() == expected.tolist()
            assert a.bit_generator.state == b.bit_generator.state

    def test_single_item_universe(self):
        from repro.generator.random_dag import _weighted_sample_noreplace

        weights = np.array([1.0])
        cdf = np.cumsum(weights)
        state = np.random.default_rng(3).bit_generator.state
        a, b = self._paired_rngs(state)
        expected = a.choice(1, size=1, replace=False, p=weights)
        got = _weighted_sample_noreplace(b, 1, cdf, weights)
        assert got.tolist() == expected.tolist()
        assert a.bit_generator.state == b.bit_generator.state


class TestHeterogeneityModels:
    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError, match="heterogeneity"):
            GeneratorConfig(heterogeneity="weird")

    def test_consistent_matrix_is_rank_one(self, rng):
        graph = generate_random_graph(
            GeneratorConfig(v=50, heterogeneity="consistent"), rng
        )
        w = graph.cost_matrix()
        # every row is the same CPU-speed profile scaled by the task mean
        nonzero = w[:, 0] > 1e-12
        ratios = w[nonzero] / w[nonzero, :1]
        assert np.allclose(ratios, ratios[0])

    def test_consistent_cpus_are_totally_ordered(self, rng):
        graph = generate_random_graph(
            GeneratorConfig(v=40, heterogeneity="consistent", beta=1.6), rng
        )
        w = graph.cost_matrix()
        order = np.argsort(w[0])
        for row in w:
            assert list(np.argsort(row, kind="stable")) == list(order)

    def test_inconsistent_matrix_is_not_rank_one(self, rng):
        graph = generate_random_graph(
            GeneratorConfig(v=50, heterogeneity="inconsistent", beta=1.6), rng
        )
        w = graph.cost_matrix()
        nonzero = w[:, 0] > 1e-12
        ratios = w[nonzero] / w[nonzero, :1]
        assert not np.allclose(ratios, ratios[0])

    def test_consistent_graphs_schedule_fine(self, rng):
        from repro.core import HDLTS
        from repro.schedule.validation import validate_schedule

        graph = generate_random_graph(
            GeneratorConfig(v=40, heterogeneity="consistent"), rng
        ).normalized()
        validate_schedule(graph, HDLTS().run(graph).schedule)

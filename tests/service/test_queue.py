"""Work-queue protocol tests: leases, expiry, at-most-once commit.

Time is injected (``now=``) everywhere, so expiry and reclaim are
exercised deterministically without sleeping.
"""

from __future__ import annotations

import pytest

from repro.runtime.context import RunContext
from repro.service.queue import WorkQueue
from repro.service.store import SqliteStore
from tests.experiments.test_harness import tiny_sweep

VALUES = [{"HDLTS": 1.0, "HEFT": 2.0}]


@pytest.fixture
def store(tmp_path):
    with SqliteStore.open(tmp_path / "svc") as store:
        yield store


@pytest.fixture
def job(store):
    return store.add_job(
        [tiny_sweep()], 4, RunContext(seed=3, chunk_size=2)
    )


def test_claim_follows_enumeration_order(store, job):
    queue = WorkQueue(store, lease_s=60.0)
    expected = [t.task for t in store.tasks_for(job.id)]
    claimed = []
    while True:
        lease = queue.claim("w1", now=100.0)
        if lease is None:
            break
        claimed.append(lease.task)
    assert claimed == expected
    assert store.job(job.ticket).state == "running"


def test_claim_is_exclusive_until_expiry(store, job):
    queue = WorkQueue(store, lease_s=10.0)
    first = queue.claim("w1", now=100.0)
    assert first is not None and first.attempt == 1
    # the other worker sees the remaining tasks, not w1's lease
    others = set()
    while True:
        lease = queue.claim("w2", now=100.0)
        if lease is None:
            break
        others.add(lease.task)
    assert first.task not in others
    # ... until the lease expires: then the task is reclaimable
    reclaimed = queue.claim("w2", now=111.0)
    assert reclaimed is not None
    assert reclaimed.task == first.task
    assert reclaimed.attempt == 2


def test_extend_renews_only_held_leases(store, job):
    queue = WorkQueue(store, lease_s=10.0)
    lease = queue.claim("w1", now=100.0)
    assert queue.extend("w1", lease, now=105.0)
    # renewed to 115: not claimable at 111
    assert queue.claim("w2", now=111.0).task != lease.task
    assert not queue.extend("w2", lease, now=105.0)


def test_commit_is_at_most_once_after_reclaim(store, job):
    queue = WorkQueue(store, lease_s=10.0)
    stale = queue.claim("w1", now=100.0)
    fresh = queue.claim("w2", now=120.0)  # reclaims the expired lease
    assert fresh.task == stale.task
    assert queue.commit("w2", fresh, VALUES, now=121.0)
    # the presumed-dead worker resurfaces: its result is discarded
    assert not queue.commit("w1", stale, VALUES, now=122.0)
    counts = store.task_counts(job.id)
    assert counts["done"] == 1


def test_last_commit_completes_the_job(store, job):
    queue = WorkQueue(store, lease_s=60.0)
    while True:
        lease = queue.claim("w1", now=100.0)
        if lease is None:
            break
        assert store.job(job.ticket).state == "running"
        assert queue.commit("w1", lease, VALUES, now=100.0)
    assert store.job(job.ticket).state == "done"
    counts = store.task_counts(job.id)
    assert counts["pending"] == counts["leased"] == 0


def test_release_returns_task_to_pending(store, job):
    queue = WorkQueue(store, lease_s=60.0)
    lease = queue.claim("w1", now=100.0)
    assert queue.release("w1", lease)
    assert store.task_counts(job.id)["pending"] == 4
    # an unexpired re-claim picks it straight back up
    assert queue.claim("w2", now=100.0).task == lease.task


def test_fail_marks_job_failed_and_stops_claims(store, job):
    queue = WorkQueue(store, lease_s=60.0)
    lease = queue.claim("w1", now=100.0)
    assert queue.fail("w1", lease, "ValueError: boom", now=100.0)
    failed = store.job(job.ticket)
    assert failed.state == "failed"
    assert "boom" in failed.error
    assert queue.claim("w1", now=100.0) is None


def test_cancelled_job_is_not_claimable(store, job):
    queue = WorkQueue(store, lease_s=60.0)
    held = queue.claim("w1", now=100.0)
    store.cancel(job.ticket)
    assert queue.claim("w2", now=100.0) is None
    # the in-flight task runs to completion; its commit is accepted
    assert queue.commit("w1", held, VALUES, now=101.0)
    assert store.job(job.ticket).state == "cancelled"


def test_outstanding_counts(store, job):
    queue = WorkQueue(store, lease_s=10.0)
    assert queue.outstanding(now=100.0) == {
        "claimable": 4, "leased": 0, "done": 0, "failed": 0
    }
    lease = queue.claim("w1", now=100.0)
    assert queue.outstanding(now=100.0) == {
        "claimable": 3, "leased": 1, "done": 0, "failed": 0
    }
    # an expired lease counts as claimable again
    assert queue.outstanding(now=120.0)["claimable"] == 4
    queue.commit("w1", lease, VALUES, now=105.0)
    assert queue.outstanding(now=105.0)["done"] == 1


def test_lease_must_be_positive(store):
    with pytest.raises(ValueError, match="lease"):
        WorkQueue(store, lease_s=0.0)

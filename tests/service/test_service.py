"""End-to-end service tests: workers, API, crash recovery, CLI.

The headline contract is the crash-safety criterion: ``kill -9`` a
worker mid-task, let the lease expire, drain with another worker, and
the merged result is *bit-identical* to a serial harness run -- the
same accumulator fields to the last ulp.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.experiments.harness import run_sweep
from repro.runtime.context import RunContext
from repro.service import api
from repro.service.store import SqliteStore
from repro.service.worker import Worker, serve
from tests.experiments.test_harness import tiny_sweep

CONTEXT = RunContext(seed=3, chunk_size=2)


def _assert_bit_identical(result, serial):
    for x in serial.definition.x_values:
        for name in serial.definition.schedulers:
            a, b = result.stats[x][name], serial.stats[x][name]
            assert (a.n, a._mean, a._m2, a._min, a._max) == (
                b.n, b._mean, b._m2, b._min, b._max
            ), (x, name)


# ----------------------------------------------------------------------
# worker loop
# ----------------------------------------------------------------------
class TestWorker:
    def test_drain_merges_bit_identically(self, tmp_path):
        job = api.submit(tmp_path / "svc", [tiny_sweep()], 6, CONTEXT)
        report = Worker(
            tmp_path / "svc", worker_id="w1", drain=True, poll_s=0.01
        ).run()
        assert report.failed == 0 and not report.interrupted
        assert report.executed == 6  # 2 x points, 3 chunks each

        results = api.result(tmp_path / "svc", job.ticket)
        serial = run_sweep(tiny_sweep(), reps=6, seed=3)
        _assert_bit_identical(results["tiny"], serial)

    def test_progress_events_persisted(self, tmp_path):
        job = api.submit(tmp_path / "svc", [tiny_sweep()], 2, CONTEXT)
        Worker(tmp_path / "svc", worker_id="w1", drain=True,
               poll_s=0.01).run()
        with SqliteStore.open(tmp_path / "svc") as store:
            names = [e["name"] for e in store.events()]
            payloads = [json.loads(e["payload"]) for e in store.events()]
        assert "service.claim" in names
        assert "service.commit" in names
        assert any(
            p.get("ticket") == job.ticket and p.get("committed")
            for p in payloads
        )
        # the job-done announcement fires exactly once
        assert names.count("service.job") == 1

    def test_deterministic_failure_fails_the_job(self, tmp_path, monkeypatch):
        job = api.submit(tmp_path / "svc", [tiny_sweep()], 2, CONTEXT)

        import repro.experiments.harness as harness

        def boom(*args, **kwargs):
            raise ValueError("injected")

        monkeypatch.setattr(harness, "run_replications", boom)
        report = Worker(tmp_path / "svc", worker_id="w1", drain=True,
                        poll_s=0.01).run()
        assert report.failed == 1
        doc = api.job_status(tmp_path / "svc", job.ticket)
        assert doc["state"] == "failed"
        assert "injected" in doc["error"]
        with pytest.raises(ValueError, match="failed"):
            api.result(tmp_path / "svc", job.ticket)

    def test_max_tasks_pauses_resumable(self, tmp_path):
        job = api.submit(tmp_path / "svc", [tiny_sweep()], 6, CONTEXT)
        first = Worker(tmp_path / "svc", worker_id="w1", drain=True,
                       poll_s=0.01, max_tasks=2).run()
        assert first.executed == 2
        assert api.job_status(tmp_path / "svc", job.ticket)["state"] == (
            "running"
        )
        second = Worker(tmp_path / "svc", worker_id="w2", drain=True,
                        poll_s=0.01).run()
        assert second.executed == 4
        results = api.result(tmp_path / "svc", job.ticket)
        _assert_bit_identical(
            results["tiny"], run_sweep(tiny_sweep(), reps=6, seed=3)
        )

    def test_serve_validates_worker_count(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            serve(tmp_path / "svc", workers=0)


# ----------------------------------------------------------------------
# crash safety: kill -9, lease expiry, reclaim, bit-identical merge
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_kill9_reclaim_is_bit_identical(self, tmp_path):
        definition = tiny_sweep()
        job = api.submit(
            tmp_path / "svc", [definition], 10,
            RunContext(seed=3, chunk_size=1),
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p]
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(tmp_path / "svc"),
                "--lease", "1", "--poll", "0.01",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # wait until the worker holds a lease, then kill -9 mid-task
            deadline = time.time() + 30.0
            leased = []
            with SqliteStore.open(tmp_path / "svc") as store:
                while time.time() < deadline:
                    rows = store.conn.execute(
                        "SELECT task FROM tasks WHERE state = 'leased'"
                    ).fetchall()
                    if rows:
                        proc.send_signal(signal.SIGKILL)
                        proc.wait(timeout=10)
                        # the worker is dead: its leases are frozen
                        leased = [
                            str(r["task"]) for r in store.conn.execute(
                                "SELECT task FROM tasks WHERE state ="
                                " 'leased'"
                            )
                        ]
                        break
                    time.sleep(0.005)
                else:
                    pytest.fail("worker never claimed a task")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # drain with a fresh worker: it must wait out the zombie lease,
        # reclaim, and finish the job
        report = Worker(tmp_path / "svc", worker_id="rescue", drain=True,
                        poll_s=0.05).run()
        assert report.failed == 0
        doc = api.job_status(tmp_path / "svc", job.ticket)
        assert doc["state"] == "done"
        assert doc["tasks_done"] == doc["tasks_total"]

        # any task the dead worker held was re-attempted
        if leased:
            with SqliteStore.open(tmp_path / "svc") as store:
                attempts = {
                    str(r["task"]): int(r["attempts"])
                    for r in store.conn.execute(
                        "SELECT task, attempts FROM tasks"
                    )
                }
            assert all(attempts[task] >= 2 for task in leased)

        results = api.result(tmp_path / "svc", job.ticket)
        serial = run_sweep(definition, reps=10, seed=3)
        _assert_bit_identical(results["tiny"], serial)


# ----------------------------------------------------------------------
# submission API
# ----------------------------------------------------------------------
class TestApi:
    def test_job_status_schema(self, tmp_path):
        job = api.submit(tmp_path / "svc", [tiny_sweep()], 4, CONTEXT,
                         title="night sweep")
        doc = api.job_status(tmp_path / "svc", job.ticket)
        assert doc["schema"] == api.SUBMIT_SCHEMA
        assert doc["state"] == "queued"
        assert doc["title"] == "night sweep"
        assert doc["sweeps"] == ["tiny"]
        assert doc["tasks_total"] == doc["tasks_pending"] == 4
        with pytest.raises(KeyError):
            api.job_status(tmp_path / "svc", "feedc0ffee99")

    def test_strict_result_requires_done(self, tmp_path):
        job = api.submit(tmp_path / "svc", [tiny_sweep()], 2, CONTEXT)
        with pytest.raises(ValueError, match="queued"):
            api.result(tmp_path / "svc", job.ticket)
        # the non-strict preview folds nothing yet
        preview = api.result(tmp_path / "svc", job.ticket, strict=False)
        assert all(
            stats.n == 0
            for by_name in preview["tiny"].stats.values()
            for stats in by_name.values()
        )

    def test_cancel(self, tmp_path):
        job = api.submit(tmp_path / "svc", [tiny_sweep()], 2, CONTEXT)
        assert api.cancel(tmp_path / "svc", job.ticket)
        assert not api.cancel(tmp_path / "svc", job.ticket)
        doc = api.job_status(tmp_path / "svc", job.ticket)
        assert doc["state"] == "cancelled"

    def test_ps_and_service_status(self, tmp_path):
        api.submit(tmp_path / "svc", [tiny_sweep()], 2, CONTEXT)
        Worker(tmp_path / "svc", worker_id="w1", drain=True,
               poll_s=0.01).run()
        ps = api.ps_document(tmp_path / "svc", now=time.time())
        assert ps["schema"] == api.PS_SCHEMA
        assert [j["state"] for j in ps["jobs"]] == ["done"]
        assert [w["worker"] for w in ps["workers"]] == ["w1"]
        assert api.format_ps(ps)  # renders

        status = api.service_status(tmp_path / "svc")
        assert status["schema"] == api.SERVICE_STATUS_SCHEMA
        assert status["complete"]
        assert status["tasks_done"] == status["tasks_total"] == 2
        assert "TICKET" in api.format_service_top(status)

    def test_status_document_dispatches_on_service_dirs(self, tmp_path):
        from repro.runtime.telemetry import format_status, status_document

        api.submit(tmp_path / "svc", [tiny_sweep()], 2, CONTEXT)
        doc = status_document(tmp_path / "svc")
        assert doc["schema"] == api.SERVICE_STATUS_SCHEMA
        assert "TICKET" in format_status(doc)


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
class TestCli:
    def _submit(self, tmp_path, capsys, *extra):
        code = main(
            ["submit", str(tmp_path / "svc"), "--figures", "fig13",
             "--reps", "1", "--seed", "0", "--json", *extra]
        )
        assert code == 0
        return json.loads(capsys.readouterr().out)

    def test_submit_json_is_schema_stamped(self, tmp_path, capsys):
        doc = self._submit(tmp_path, capsys)
        assert doc["schema"] == "repro.submit/1"
        assert doc["state"] == "queued"
        assert doc["sweeps"] == ["fig13"]

    def test_ps_json_is_schema_stamped(self, tmp_path, capsys):
        self._submit(tmp_path, capsys)
        assert main(["ps", str(tmp_path / "svc"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.ps/1"
        assert len(doc["jobs"]) == 1

    def test_serve_watch_matches_figure_stdout(self, tmp_path, capsys):
        ticket = self._submit(tmp_path, capsys)["ticket"]
        assert main(["serve", str(tmp_path / "svc"), "--drain",
                     "--poll", "0.01"]) == 0
        capsys.readouterr()
        assert main(["watch", str(tmp_path / "svc"), ticket]) == 0
        watched = capsys.readouterr().out
        assert main(["figure", "fig13", "--reps", "1", "--seed", "0"]) == 0
        assert watched == capsys.readouterr().out

    def test_submit_requires_a_sweep(self, tmp_path):
        assert main(["submit", str(tmp_path / "svc")]) == 2

    def test_cancel_exit_codes(self, tmp_path, capsys):
        ticket = self._submit(tmp_path, capsys)["ticket"]
        assert main(["cancel", str(tmp_path / "svc"), ticket]) == 0
        assert main(["cancel", str(tmp_path / "svc"), ticket]) == 1

    def test_stream_submit_enqueues(self, tmp_path, capsys):
        doc = self._submit(
            tmp_path, capsys, "--stream", "rate", "--x", "0.01",
            "--jobs", "3", "--v", "8",
        )
        assert doc["kind"] == "stream"
        assert "stream-rate" in doc["sweeps"]

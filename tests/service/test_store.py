"""Unit tests for the unified run store layer.

The headline contracts: task ids round-trip and enumeration matches
the parallel harness's chunk plan exactly; every backend (JSONL
ledger, columnar shard, SQLite service store) records chunks whose
float values replay bit-identically; and the SQLite store's schema
tag, job lifecycle and task bookkeeping behave under reopen.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.experiments.parallel import chunk_plan
from repro.runtime.context import RunContext
from repro.service.store import (
    STORE_SCHEMA,
    ColumnarStore,
    LedgerStore,
    SqliteResultStore,
    SqliteStore,
    TaskSpec,
    enumerate_tasks,
    parse_task_id,
    task_id,
)
from tests.experiments.test_harness import tiny_closure_sweep, tiny_sweep

#: awkward floats that must survive a JSON round-trip to the last ulp
VALUES = [
    {"HDLTS": math.pi, "HEFT": 1.0 / 3.0},
    {"HDLTS": 2.0 ** -45, "HEFT": 1e300},
]


# ----------------------------------------------------------------------
# task ids and enumeration
# ----------------------------------------------------------------------
class TestTaskIds:
    def test_format_is_stable(self):
        assert task_id("fig2", 3, 0, 5) == "fig2:x003:r00000000-00000005"

    def test_parse_round_trip(self):
        tid = task_id("stream-rate", 11, 40, 45)
        assert parse_task_id(tid) == ("stream-rate", 11, 40, 45)

    def test_parse_tolerates_colons_in_sweep_key(self):
        tid = task_id("a:b", 0, 0, 1)
        assert parse_task_id(tid) == ("a:b", 0, 0, 1)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_task_id("not-a-task-id")


class TestEnumerate:
    def test_matches_chunk_plan(self):
        definition = tiny_sweep()
        tasks = enumerate_tasks([definition], 6, seed=3, validate=False,
                                chunk_size=2)
        chunks = chunk_plan(definition, 6, 3, False, 2)
        assert len(tasks) == len(chunks)
        for task, chunk in zip(tasks, chunks):
            assert isinstance(task, TaskSpec)
            assert (task.sweep, task.x_index, task.rep_lo, task.rep_hi) == (
                chunk[0], chunk[1], chunk[3], chunk[4]
            )
            assert task.x == chunk[2]

    def test_indices_are_global_across_sweeps(self):
        import dataclasses

        a = tiny_sweep()
        b = dataclasses.replace(a, key="tiny2", metric="makespan")
        tasks = enumerate_tasks([a, b], 2, seed=0, validate=False,
                                chunk_size=2)
        assert [t.index for t in tasks] == list(range(len(tasks)))
        assert len({t.task_id for t in tasks}) == len(tasks)


# ----------------------------------------------------------------------
# backends record and replay chunks bit-identically
# ----------------------------------------------------------------------
def _roundtrip(store, reopen, has_x=True):
    store.append_chunk("tiny", 0, 1.0, 0, 2, VALUES)
    store = reopen(store)
    chunks = store.completed_chunks("tiny")
    assert set(chunks) == {(0, 0, 2)}
    assert chunks[(0, 0, 2)]["values"] == VALUES
    # the columnar format stores only the x *index* (the value comes
    # from the campaign spec), so x is None there
    assert chunks[(0, 0, 2)]["x"] == (1.0 if has_x else None)
    store.close()


class TestLedgerStore:
    def test_round_trip_exact(self, tmp_path):
        path = tmp_path / "chunks.jsonl"

        def reopen(store):
            store.close()
            return LedgerStore(path)

        _roundtrip(LedgerStore(path), reopen)

    def test_torn_tail_discarded(self, tmp_path):
        path = tmp_path / "chunks.jsonl"
        with LedgerStore(path) as store:
            store.append_chunk("tiny", 0, 1.0, 0, 2, VALUES)
        with open(path, "a") as fh:
            fh.write('{"sweep": "tiny", "x_index": 1, "trunc')
        with LedgerStore(path) as store:
            assert set(store.completed_chunks("tiny")) == {(0, 0, 2)}
            assert store.completed_ids() == {task_id("tiny", 0, 0, 2)}

    def test_completed_ids_spans_sweeps(self, tmp_path):
        with LedgerStore(tmp_path / "chunks.jsonl") as store:
            store.append_chunk("a", 0, 1.0, 0, 2, VALUES)
            store.append_chunk("b", 1, 3.0, 2, 4, VALUES)
            assert store.completed_ids() == {
                task_id("a", 0, 0, 2), task_id("b", 1, 2, 4)
            }


class TestColumnarStore:
    GROUPS = {"tiny": ["HDLTS", "HEFT"]}

    def test_round_trip_exact(self, tmp_path):
        path = tmp_path / "shard.col"

        def reopen(store):
            store.close()
            return ColumnarStore(path, self.GROUPS)

        _roundtrip(ColumnarStore(path, self.GROUPS, mode="a"), reopen,
                   has_x=False)

    def test_read_matrix_exact(self, tmp_path):
        path = tmp_path / "shard.col"
        with ColumnarStore(path, self.GROUPS, mode="a") as store:
            store.append_chunk("tiny", 0, 1.0, 0, 2, VALUES)
            tid = next(iter(store.completed_ids()))
        with ColumnarStore(path, self.GROUPS) as store:
            matrix = store.read_matrix(tid, self.GROUPS["tiny"], 2)
            expected = np.array(
                [[row[c] for c in self.GROUPS["tiny"]] for row in VALUES]
            )
            assert matrix.dtype == np.float64
            assert (matrix == expected).all()

    def test_appended_ids_visible_before_reopen(self, tmp_path):
        with ColumnarStore(tmp_path / "s.col", self.GROUPS, mode="a") as store:
            assert store.completed_ids() == set()
            store.append_chunk("tiny", 1, 3.0, 0, 2, VALUES)
            assert store.completed_ids() == {task_id("tiny", 1, 0, 2)}

    def test_groups_recovered_from_header(self, tmp_path):
        path = tmp_path / "s.col"
        with ColumnarStore(path, self.GROUPS, mode="a") as store:
            store.append_chunk("tiny", 0, 1.0, 0, 2, VALUES)
        with ColumnarStore(path) as store:  # no groups given
            assert set(store.completed_chunks("tiny")) == {(0, 0, 2)}


class TestSqliteStore:
    def test_round_trip_exact(self, tmp_path):
        store = SqliteStore.open(tmp_path / "svc")
        job = store.add_job([tiny_sweep()], 2, RunContext(seed=0))
        view = SqliteResultStore(store, job.id)

        def reopen(view):
            view.store.close()
            return SqliteResultStore(SqliteStore.open(tmp_path / "svc"), job.id)

        _roundtrip(view, reopen)

    def test_schema_stamped_and_checked(self, tmp_path):
        store = SqliteStore.open(tmp_path / "svc")
        row = store.conn.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()
        assert row["value"] == STORE_SCHEMA
        store.conn.execute(
            "UPDATE meta SET value = 'bogus/9' WHERE key = 'schema'"
        )
        store.close()
        with pytest.raises(ValueError, match="bogus/9"):
            SqliteStore.open(tmp_path / "svc")

    def test_open_without_create_requires_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SqliteStore.open(tmp_path / "nowhere", create=False)

    def test_add_job_enumerates_tasks(self, tmp_path):
        with SqliteStore.open(tmp_path / "svc") as store:
            context = RunContext(seed=3, chunk_size=2)
            job = store.add_job([tiny_sweep()], 6, context, title="t")
            assert job.state == "queued"
            assert job.reps == 6
            tasks = store.tasks_for(job.id)
            expected = enumerate_tasks([tiny_sweep()], 6, 3, False, 2)
            assert [t.task for t in tasks] == [t.task_id for t in expected]
            assert store.task_counts(job.id) == {
                "pending": len(tasks), "leased": 0, "done": 0, "failed": 0
            }

    def test_add_job_rejects_closures(self, tmp_path):
        with SqliteStore.open(tmp_path / "svc") as store:
            with pytest.raises(ValueError, match="closure"):
                store.add_job([tiny_closure_sweep()], 2, RunContext())

    def test_job_lookup_and_cancel(self, tmp_path):
        with SqliteStore.open(tmp_path / "svc") as store:
            job = store.add_job([tiny_sweep()], 2, RunContext())
            assert store.job(job.ticket).id == job.id
            assert store.job_by_id(job.id).ticket == job.ticket
            with pytest.raises(KeyError):
                store.job("feedc0ffee99")
            assert store.cancel(job.ticket)
            assert store.job(job.ticket).state == "cancelled"
            assert not store.cancel(job.ticket)  # already terminal

    def test_events_cursor(self, tmp_path):
        with SqliteStore.open(tmp_path / "svc") as store:
            store.append_events(
                [(1.0, "w1", "service.claim", json.dumps({"task": "a"}))]
            )
            store.append_events(
                [(2.0, "w1", "service.commit", json.dumps({"task": "a"}))]
            )
            events = store.events()
            assert [e["name"] for e in events] == [
                "service.claim", "service.commit"
            ]
            assert store.events(after_id=events[0]["id"]) == [events[1]]

    def test_workers_registry(self, tmp_path):
        with SqliteStore.open(tmp_path / "svc") as store:
            store.register_worker("w1", 123, "host-a")
            store.beat_worker("w1", "busy", tasks_done=4)
            (row,) = store.workers()
            assert (row["worker"], row["pid"], row["state"]) == (
                "w1", 123, "busy"
            )
            assert row["tasks_done"] == 4
            with pytest.raises(ValueError, match="state"):
                store.beat_worker("w1", "zombie")

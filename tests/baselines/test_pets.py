"""Unit tests for PETS."""

import pytest

from repro.baselines import PETS
from repro.model.levels import task_levels
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


def test_fig1_makespan_close_to_published(fig1):
    """The paper quotes PETS = 77 on Fig. 1; our reading of the rank
    definition yields 76 (tie-handling differs; see DESIGN.md)."""
    makespan = PETS().run(fig1).makespan
    assert makespan == pytest.approx(76.0)
    assert abs(makespan - 77.0) <= 2.0


def test_fig1_schedule_feasible(fig1):
    validate_schedule(fig1, PETS().run(fig1).schedule)


def test_levels_scheduled_in_order(fig1):
    """Every task starts no earlier than its level predecessors allow;
    concretely, the schedule is precedence-feasible by construction."""
    schedule = PETS().run(fig1).schedule
    levels = task_levels(fig1)
    # entry (level 0) must be the earliest-starting task
    starts = {t: schedule.start_of(t) for t in fig1.tasks()}
    assert min(starts, key=starts.get) == 0
    assert levels[0] == 0


class TestRanks:
    def test_drc_ranks_are_rounded_integers(self, fig1):
        ranks = PETS().ranks(fig1)
        assert all(float(r).is_integer() for r in ranks)

    def test_entry_rank_is_acc_plus_dtc(self, fig1):
        # entry: no parents -> DRC = 0; DTC = 18+12+9+11+14 = 64; ACC = 13
        ranks = PETS().ranks(fig1)
        assert ranks[0] == pytest.approx(round(13 + 64))

    def test_rpt_variant_differs_and_schedules(self, fig1):
        drc = PETS(variant="drc")
        rpt = PETS(variant="rpt")
        assert list(drc.ranks(fig1)) != list(rpt.ranks(fig1))
        validate_schedule(fig1, rpt.run(fig1).schedule)

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            PETS(variant="xyz")


def test_random_graphs_feasible():
    for seed in range(4):
        graph = make_random_graph(seed=seed, v=50, ccr=2.0)
        result = PETS().run(graph)
        validate_schedule(graph, result.schedule)


def test_single_task(single_task):
    assert PETS().run(single_task).makespan == 3.0

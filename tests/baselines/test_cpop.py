"""Unit tests for CPOP."""

import numpy as np
import pytest

from repro.baselines import CPOP
from repro.model.ranking import downward_rank, upward_rank
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


def test_canonical_fig1_makespan(fig1):
    """Topcuoglu's published CPOP makespan on this graph is 86."""
    assert CPOP().run(fig1).makespan == pytest.approx(86.0)


def test_fig1_schedule_feasible(fig1):
    validate_schedule(fig1, CPOP().run(fig1).schedule)


def test_fig1_critical_path(fig1):
    """The published critical path of the Fig. 1 graph is T1-T2-T9-T10."""
    priority = upward_rank(fig1) + downward_rank(fig1)
    path = CPOP().critical_path(fig1, priority)
    assert path == [0, 1, 8, 9]


def test_critical_path_tasks_share_a_cpu(fig1):
    scheduler = CPOP()
    schedule = scheduler.run(fig1).schedule
    priority = upward_rank(fig1) + downward_rank(fig1)
    path = scheduler.critical_path(fig1, priority)
    procs = {schedule.proc_of(t) for t in path}
    assert len(procs) == 1


def test_cp_cpu_minimizes_cp_computation(fig1):
    scheduler = CPOP()
    schedule = scheduler.run(fig1).schedule
    priority = upward_rank(fig1) + downward_rank(fig1)
    path = scheduler.critical_path(fig1, priority)
    cp_proc = schedule.proc_of(path[0])
    w = fig1.cost_matrix()
    totals = w[path].sum(axis=0)
    assert totals[cp_proc] == pytest.approx(totals.min())


def test_random_graphs_feasible():
    for seed in range(4):
        graph = make_random_graph(seed=seed, v=50, ccr=2.0)
        result = CPOP().run(graph)
        validate_schedule(graph, result.schedule)
        assert result.schedule.is_complete()


def test_multi_exit_normalized_automatically():
    from repro.model.task_graph import TaskGraph

    graph = TaskGraph(2)
    a = graph.add_task([1, 2])
    b, c = graph.add_task([3, 1]), graph.add_task([2, 2])
    graph.add_edge(a, b, 1.0)
    graph.add_edge(a, c, 1.0)
    result = CPOP().run(graph)  # CPOP requires a single exit: auto-pseudo
    assert result.schedule.is_complete()


def test_single_task(single_task):
    assert CPOP().run(single_task).makespan == 3.0

"""Unit tests for the scheduler registry."""

import pytest

from repro.baselines.registry import (
    PAPER_SET,
    SCHEDULER_FACTORIES,
    make_scheduler,
    paper_schedulers,
    scheduler_names,
)
from repro.core import HDLTS, PriorityRule


def test_all_names_instantiate():
    for name in scheduler_names():
        scheduler = make_scheduler(name)
        assert hasattr(scheduler, "build_schedule")


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="known:"):
        make_scheduler("NOPE")


def test_paper_set_matches_evaluation_section():
    assert PAPER_SET == ("HDLTS", "HEFT", "PETS", "PEFT", "SDBATS")


def test_paper_schedulers_order_and_types():
    names = [type(s).__name__ for s in paper_schedulers()]
    assert names == ["HDLTS", "HEFT", "PETS", "PEFT", "SDBATS"]


def test_paper_schedulers_with_cpop():
    schedulers = paper_schedulers(include_cpop=True)
    assert any(type(s).__name__ == "CPOP" for s in schedulers)
    assert len(schedulers) == 6


def test_ablation_variants_configured():
    nodup = make_scheduler("HDLTS-nodup")
    assert isinstance(nodup, HDLTS) and not nodup.duplicate_entry
    ins = make_scheduler("HDLTS-insertion")
    assert isinstance(ins, HDLTS) and ins.use_insertion
    greedy = make_scheduler("HDLTS-greedy")
    assert greedy.priority is PriorityRule.MIN_EFT_FIRST
    noins = make_scheduler("HEFT-noinsertion")
    assert not noins.insertion
    rpt = make_scheduler("PETS-rpt")
    assert rpt.variant == "rpt"


def test_factories_produce_fresh_instances():
    a, b = make_scheduler("HDLTS"), make_scheduler("HDLTS")
    assert a is not b


def test_every_registered_scheduler_completes_fig1(fig1):
    for name in SCHEDULER_FACTORIES:
        result = make_scheduler(name).run(fig1)
        assert result.schedule.is_complete(), name
        assert result.makespan > 0

"""Unit tests for the scheduler registry."""

import pytest

from repro.baselines.registry import (
    PAPER_SET,
    SCHEDULER_FACTORIES,
    make_scheduler,
    paper_schedulers,
    scheduler_names,
)
from repro.core import HDLTS, PriorityRule


def test_all_names_instantiate():
    for name in scheduler_names():
        scheduler = make_scheduler(name)
        assert hasattr(scheduler, "build_schedule")


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="known:"):
        make_scheduler("NOPE")


def test_unknown_name_error_includes_attempted_name():
    with pytest.raises(KeyError, match="'NOPE'"):
        make_scheduler("NOPE")


def test_case_insensitive_lookup():
    assert type(make_scheduler("hdlts")).__name__ == "HDLTS"
    assert type(make_scheduler("la-heft")).__name__ == "LookaheadHEFT"


def test_folded_table_built_once_at_module_level():
    from repro.baselines import registry

    assert registry._FOLDED["hdlts"] == ["HDLTS"]
    # every registered name appears under its folding
    folded_names = [n for names in registry._FOLDED.values() for n in names]
    assert sorted(folded_names) == sorted(SCHEDULER_FACTORIES)


def test_ambiguous_case_insensitive_match_raises(monkeypatch):
    from repro.baselines import registry

    factories = dict(SCHEDULER_FACTORIES)
    factories["hdlts"] = factories["HDLTS"]  # collides with HDLTS when folded
    monkeypatch.setattr(registry, "SCHEDULER_FACTORIES", factories)
    monkeypatch.setattr(registry, "_FOLDED", registry._fold_names(factories))
    # exact names still win outright
    assert type(registry.make_scheduler("HDLTS")).__name__ == "HDLTS"
    with pytest.raises(KeyError, match="ambiguous scheduler name 'Hdlts'"):
        registry.make_scheduler("Hdlts")
    with pytest.raises(KeyError, match="HDLTS, hdlts"):
        registry.make_scheduler("Hdlts")


def test_paper_set_matches_evaluation_section():
    assert PAPER_SET == ("HDLTS", "HEFT", "PETS", "PEFT", "SDBATS")


def test_paper_schedulers_order_and_types():
    names = [type(s).__name__ for s in paper_schedulers()]
    assert names == ["HDLTS", "HEFT", "PETS", "PEFT", "SDBATS"]


def test_paper_schedulers_with_cpop():
    schedulers = paper_schedulers(include_cpop=True)
    assert any(type(s).__name__ == "CPOP" for s in schedulers)
    assert len(schedulers) == 6


def test_ablation_variants_configured():
    nodup = make_scheduler("HDLTS-nodup")
    assert isinstance(nodup, HDLTS) and not nodup.duplicate_entry
    ins = make_scheduler("HDLTS-insertion")
    assert isinstance(ins, HDLTS) and ins.use_insertion
    greedy = make_scheduler("HDLTS-greedy")
    assert greedy.priority is PriorityRule.MIN_EFT_FIRST
    noins = make_scheduler("HEFT-noinsertion")
    assert not noins.insertion
    rpt = make_scheduler("PETS-rpt")
    assert rpt.variant == "rpt"


def test_factories_produce_fresh_instances():
    a, b = make_scheduler("HDLTS"), make_scheduler("HDLTS")
    assert a is not b


def test_every_registered_scheduler_completes_fig1(fig1):
    for name in SCHEDULER_FACTORIES:
        result = make_scheduler(name).run(fig1)
        assert result.schedule.is_complete(), name
        assert result.makespan > 0

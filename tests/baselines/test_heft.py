"""Unit tests for HEFT against the canonical published schedule."""

import pytest

from repro.baselines import HEFT
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


def test_canonical_fig1_makespan(fig1):
    """Topcuoglu's published HEFT makespan on this graph is 80."""
    assert HEFT().run(fig1).makespan == pytest.approx(80.0)


def test_fig1_schedule_feasible(fig1):
    validate_schedule(fig1, HEFT().run(fig1).schedule)


def test_rank_descending_schedule_order(fig1):
    """T1 is scheduled first; the entry lands before every child."""
    schedule = HEFT().run(fig1).schedule
    entry_start = schedule.start_of(0)
    for child in fig1.successors(0):
        assert schedule.start_of(child) >= entry_start


def test_insertion_helps_or_ties():
    """Insertion-based HEFT never loses to the append variant on the
    same priority order (the hole is only used when it helps)."""
    for seed in range(6):
        graph = make_random_graph(seed=seed, v=60, ccr=3.0)
        with_ins = HEFT(insertion=True).run(graph).makespan
        without = HEFT(insertion=False).run(graph).makespan
        assert with_ins <= without + 1e-9


def test_no_duplicates(fig1):
    assert not HEFT().run(fig1).schedule.duplicates()


def test_single_task(single_task):
    result = HEFT().run(single_task)
    assert result.makespan == 3.0


def test_single_cpu_serializes(chain):
    graph = make_random_graph(seed=7, v=25, n_procs=1)
    result = HEFT().run(graph)
    assert result.makespan == pytest.approx(float(graph.cost_matrix().sum()))


def test_homogeneous_platform():
    """beta=0: all CPUs identical; HEFT must still be feasible/complete."""
    graph = make_random_graph(seed=8, v=50, beta=0.0)
    result = HEFT().run(graph)
    validate_schedule(graph, result.schedule)

"""Unit tests for SDBATS."""

import pytest

from repro.baselines import SDBATS
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


def test_fig1_makespan_matches_published(fig1):
    """The HDLTS paper quotes SDBATS = 74 on the Fig. 1 graph."""
    assert SDBATS().run(fig1).makespan == pytest.approx(74.0)


def test_fig1_schedule_feasible(fig1):
    validate_schedule(fig1, SDBATS().run(fig1).schedule)


def test_entry_duplicated_on_every_other_cpu(fig1):
    schedule = SDBATS().run(fig1).schedule
    copies = schedule.copies(0)
    assert len(copies) == fig1.n_procs
    assert {c.proc for c in copies} == set(fig1.procs())
    assert sum(1 for c in copies if not c.duplicate) == 1


def test_duplication_can_be_disabled(fig1):
    schedule = SDBATS(duplicate_entry=False).run(fig1).schedule
    assert not schedule.duplicates()
    validate_schedule(fig1, schedule)


def test_pseudo_entry_not_duplicated():
    """Zero-cost pseudo entries deliver data instantly: no copies."""
    graph = make_random_graph(seed=5, v=60, alpha=2.0)
    entry = graph.entry_task
    if graph.cost_row(entry).max() == 0:
        schedule = SDBATS().run(graph).schedule
        assert not schedule.duplicates(entry)


def test_random_graphs_feasible():
    for seed in range(4):
        graph = make_random_graph(seed=seed, v=50, ccr=2.0)
        validate_schedule(graph, SDBATS().run(graph).schedule)


def test_single_task(single_task):
    result = SDBATS().run(single_task)
    assert result.makespan == 3.0


def test_single_cpu(chain):
    graph = make_random_graph(seed=6, v=25, n_procs=1)
    result = SDBATS().run(graph)
    assert result.makespan == pytest.approx(float(graph.cost_matrix().sum()))

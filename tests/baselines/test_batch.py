"""Unit tests for the level-wise Min-Min / Max-Min batch heuristics."""

import pytest

from repro.baselines.batch import LevelMaxMin, LevelMinMin
from repro.model.levels import task_levels
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


class TestFeasibility:
    @pytest.mark.parametrize("cls", [LevelMinMin, LevelMaxMin])
    def test_fig1_feasible(self, cls, fig1):
        result = cls().run(fig1)
        validate_schedule(fig1, result.schedule)
        assert result.schedule.is_complete()

    @pytest.mark.parametrize("cls", [LevelMinMin, LevelMaxMin])
    def test_random_graphs_feasible(self, cls):
        for seed in range(3):
            graph = make_random_graph(seed=seed, v=50, ccr=2.0)
            validate_schedule(graph, cls().run(graph).schedule)

    @pytest.mark.parametrize("cls", [LevelMinMin, LevelMaxMin])
    def test_single_task(self, cls, single_task):
        assert cls().run(single_task).makespan == 3.0


class TestSemantics:
    def test_minmin_and_maxmin_differ(self, fig1):
        assert LevelMinMin().run(fig1).makespan != LevelMaxMin().run(fig1).makespan

    def test_levels_complete_in_order(self, fig1):
        """Level l+1 tasks never start before every level-l task that
        feeds them finished -- follows from precedence, but the batch
        structure additionally means no level-l+1 task is *committed*
        before all of level l (spot-check via start times per level)."""
        schedule = LevelMinMin().run(fig1).schedule
        levels = task_levels(fig1)
        for task in fig1.tasks():
            for parent in fig1.predecessors(task):
                assert levels[parent] < levels[task]
                assert (
                    schedule.start_of(task)
                    >= schedule.finish_of(parent) - 1e-9
                    or schedule.proc_of(task) != schedule.proc_of(parent)
                )

    def test_minmin_commits_smallest_first_within_level(self):
        """On an independent batch (one level), Min-Min's first commit
        is the globally smallest completion time."""
        from repro.model.task_graph import TaskGraph
        from repro.schedule.schedule import Schedule

        graph = TaskGraph(2)
        graph.add_task([9, 9])
        small = graph.add_task([1, 1])
        graph.add_task([5, 5])
        schedule = LevelMinMin().run(graph).schedule
        # the small task starts at time 0 (committed first)
        assert schedule.start_of(small) == 0.0

    def test_maxmin_commits_largest_first_within_level(self):
        from repro.model.task_graph import TaskGraph

        graph = TaskGraph(2)
        big = graph.add_task([9, 9])
        graph.add_task([1, 1])
        graph.add_task([5, 5])
        schedule = LevelMaxMin().run(graph).schedule
        assert schedule.start_of(big) == 0.0

    def test_registry_names(self, fig1):
        from repro.baselines.registry import make_scheduler

        assert make_scheduler("MinMin").run(fig1).schedule.is_complete()
        assert make_scheduler("MaxMin").run(fig1).schedule.is_complete()

"""Unit tests for the random-scheduler floor."""

import pytest

from repro.baselines.randomized import RandomScheduler
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


def test_feasible_on_fig1(fig1):
    result = RandomScheduler().run(fig1)
    validate_schedule(fig1, result.schedule)
    assert result.schedule.is_complete()


def test_deterministic_given_seed(fig1):
    assert (
        RandomScheduler(seed=7).run(fig1).makespan
        == RandomScheduler(seed=7).run(fig1).makespan
    )


def test_seeds_differ(fig1):
    makespans = {RandomScheduler(seed=s).run(fig1).makespan for s in range(8)}
    assert len(makespans) > 1


def test_every_real_heuristic_beats_the_floor_on_average():
    from repro.baselines.registry import make_scheduler
    from repro.metrics.metrics import slr

    heuristics = ("HDLTS", "HEFT", "PETS", "PEFT", "SDBATS", "DLS")
    totals = {name: 0.0 for name in (*heuristics, "RAND")}
    reps = 10
    for seed in range(reps):
        graph = make_random_graph(seed=seed, v=50, ccr=2.0)
        for name in totals:
            totals[name] += slr(graph, make_scheduler(name).run(graph).makespan)
    for name in heuristics:
        assert totals[name] < 0.9 * totals["RAND"], name


def test_random_graphs_feasible():
    for seed in range(3):
        graph = make_random_graph(seed=seed, v=40)
        validate_schedule(graph, RandomScheduler(seed=seed).run(graph).schedule)

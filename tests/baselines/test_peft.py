"""Unit tests for PEFT."""

import pytest

from repro.baselines import HEFT, PEFT
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


def test_fig1_makespan_close_to_published(fig1):
    """The paper quotes PEFT = 86 on Fig. 1; our implementation yields
    85 (the OCT look-ahead tie-break differs by one slot)."""
    makespan = PEFT().run(fig1).makespan
    assert makespan == pytest.approx(85.0)
    assert abs(makespan - 86.0) <= 2.0


def test_fig1_schedule_feasible(fig1):
    validate_schedule(fig1, PEFT().run(fig1).schedule)


def test_ready_order_respects_precedence():
    """PEFT consumes a ready list, so parents always precede children."""
    graph = make_random_graph(seed=13, v=60, ccr=2.0)
    schedule = PEFT().run(graph).schedule
    for edge in graph.edges():
        assert schedule.start_of(edge.dst) >= schedule.finish_of(edge.src) - 1e-9 or (
            schedule.proc_of(edge.dst) != schedule.proc_of(edge.src)
        )
    validate_schedule(graph, schedule)


def test_oct_objective_can_beat_pure_eft_sometimes():
    """PEFT's look-ahead wins on some instances (it's not vacuous)."""
    wins = 0
    for seed in range(12):
        graph = make_random_graph(seed=seed, v=60, ccr=3.0)
        if PEFT().run(graph).makespan < HEFT().run(graph).makespan:
            wins += 1
    assert wins > 0


def test_random_graphs_feasible():
    for seed in range(4):
        graph = make_random_graph(seed=seed, v=50, ccr=2.0)
        validate_schedule(graph, PEFT().run(graph).schedule)


def test_single_task(single_task):
    assert PEFT().run(single_task).makespan == 3.0


def test_no_duplicates(fig1):
    assert not PEFT().run(fig1).schedule.duplicates()

"""Unit tests for the shared EFT machinery."""

import pytest

from repro.baselines.common import (
    est_eft,
    eft_vector,
    place_min_eft,
    precedence_safe_order,
)
from repro.model.ranking import upward_rank
from repro.schedule.schedule import Schedule


class TestEstEft:
    def test_entry_on_empty_platform(self, fig1):
        schedule = Schedule(fig1)
        start, finish = est_eft(schedule, 0, 2)
        assert (start, finish) == (0.0, 9.0)

    def test_eft_vector_matches_scalar(self, fig1):
        schedule = Schedule(fig1)
        schedule.place(0, 2, 0.0)
        vec = eft_vector(schedule, 5)
        for proc in fig1.procs():
            assert vec[proc] == est_eft(schedule, 5, proc)[1]

    def test_insertion_flag_passed_through(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 10.0, duration=5.0, duplicate=True)  # block [10,15)
        # a 2-unit task ready at 0 fits in the leading hole with insertion
        start_ins, _ = est_eft(schedule, 0, 0, insertion=True)
        start_app, _ = est_eft(schedule, 0, 0, insertion=False)
        assert start_ins == 0.0
        assert start_app == 15.0


class TestPlaceMinEft:
    def test_picks_global_min(self, fig1):
        schedule = Schedule(fig1)
        assignment = place_min_eft(schedule, 0)
        assert assignment.proc == 2  # W row (14, 16, 9)
        assert assignment.finish == 9.0

    def test_restricted_proc_set(self, fig1):
        schedule = Schedule(fig1)
        assignment = place_min_eft(schedule, 0, procs=[0, 1])
        assert assignment.proc == 0

    def test_empty_proc_set_rejected(self, fig1):
        with pytest.raises(ValueError, match="no candidate"):
            place_min_eft(Schedule(fig1), 0, procs=[])

    def test_custom_objective(self, fig1):
        schedule = Schedule(fig1)
        # objective that penalizes P3 heavily -> picks P1 (14 < 16)
        assignment = place_min_eft(
            schedule, 0, objective=lambda p, eft: eft + (1000 if p == 2 else 0)
        )
        assert assignment.proc == 0

    def test_tie_breaks_to_lowest_cpu(self):
        from repro.model.task_graph import TaskGraph

        graph = TaskGraph(3)
        graph.add_task([5, 5, 5])
        schedule = Schedule(graph)
        assert place_min_eft(schedule, 0).proc == 0


class TestPrecedenceSafeOrder:
    def test_respects_priority(self, fig1):
        ranks = upward_rank(fig1)
        order = precedence_safe_order(fig1, ranks)
        assert order[0] == 0  # entry has the highest upward rank
        assert order[-1] == 9  # exit the lowest

    def test_ties_resolved_topologically(self):
        from repro.model.task_graph import TaskGraph

        graph = TaskGraph(1)
        a, b = graph.add_task([0]), graph.add_task([0])
        graph.add_edge(a, b, 0.0)  # both rank 0: tie
        order = precedence_safe_order(graph, [0.0, 0.0])
        assert order == [a, b]

    def test_parents_always_before_children_under_upward_rank(self):
        from tests.conftest import make_random_graph

        graph = make_random_graph(seed=17, v=60)
        ranks = upward_rank(graph)
        order = precedence_safe_order(graph, ranks)
        position = {t: i for i, t in enumerate(order)}
        for edge in graph.edges():
            assert position[edge.src] < position[edge.dst]

    def test_ascending_option(self, fig1):
        ranks = upward_rank(fig1)
        ascending = precedence_safe_order(fig1, ranks, descending=False)
        assert ascending[0] == 9

"""Unit tests for the extension baselines: DLS, Lookahead HEFT, DHEFT."""

import pytest

from repro.baselines import DHEFT, DLS, HEFT, LookaheadHEFT
from repro.model.attributes import mean_execution_times
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


class TestDLS:
    def test_fig1_feasible(self, fig1):
        result = DLS().run(fig1)
        validate_schedule(fig1, result.schedule)
        assert result.schedule.is_complete()

    def test_static_levels_exclude_communication(self, fig1):
        levels = DLS().static_levels(fig1)
        # SL(T10) = mean_w(T10); SL(T8) = mean_w(T8) + SL(T10) (no comm)
        mean_w = mean_execution_times(fig1)
        assert levels[9] == pytest.approx(mean_w[9])
        assert levels[7] == pytest.approx(mean_w[7] + mean_w[9])

    def test_static_levels_monotone(self, fig1):
        levels = DLS().static_levels(fig1)
        for edge in fig1.edges():
            assert levels[edge.src] > levels[edge.dst] or (
                fig1.cost_row(edge.src).mean() == 0
            )

    def test_random_graphs_feasible(self):
        for seed in range(4):
            graph = make_random_graph(seed=seed, v=50, ccr=2.0)
            validate_schedule(graph, DLS().run(graph).schedule)

    def test_single_task(self, single_task):
        assert DLS().run(single_task).makespan == 3.0

    def test_delta_prefers_affine_cpu(self):
        """On independent equal tasks, DLS spreads load (Delta pulls
        each task toward its fast CPU)."""
        from repro.model.task_graph import TaskGraph

        graph = TaskGraph(2)
        graph.add_task([1, 10])
        graph.add_task([10, 1])
        schedule = DLS().run(graph.normalized()).schedule
        assert schedule.proc_of(0) == 0
        assert schedule.proc_of(1) == 1


class TestLookaheadHEFT:
    def test_fig1_feasible_and_competitive(self, fig1):
        result = LookaheadHEFT().run(fig1)
        validate_schedule(fig1, result.schedule)
        assert result.makespan <= 90  # sanity: in HEFT's neighbourhood

    def test_beats_heft_somewhere(self):
        wins = 0
        for seed in range(12):
            graph = make_random_graph(seed=seed, v=50, ccr=3.0)
            if (
                LookaheadHEFT().run(graph).makespan
                < HEFT().run(graph).makespan - 1e-9
            ):
                wins += 1
        assert wins > 0

    def test_random_graphs_feasible(self):
        for seed in range(3):
            graph = make_random_graph(seed=seed, v=40, ccr=2.0)
            validate_schedule(graph, LookaheadHEFT().run(graph).schedule)

    def test_exit_task_scored_by_own_eft(self, single_task):
        assert LookaheadHEFT().run(single_task).makespan == 3.0


class TestDHEFT:
    def test_fig1_duplication_reduces_makespan(self, fig1):
        heft = HEFT().run(fig1)
        dheft = DHEFT().run(fig1)
        validate_schedule(fig1, dheft.schedule)
        assert dheft.makespan <= heft.makespan
        assert dheft.n_duplicates > 0

    def test_duplicates_may_copy_non_entry_tasks(self, fig1):
        schedule = DHEFT().run(fig1).schedule
        copied = {a.task for a in schedule.duplicates()}
        assert copied  # some parent was copied
        # unlike HDLTS, DHEFT is allowed to copy beyond the entry
        # (on Fig 1 it does copy the entry too -- both are legal)

    def test_duplicates_respect_own_parents(self):
        """The validator enforces that every copy has its inputs."""
        for seed in range(5):
            graph = make_random_graph(seed=seed, v=50, ccr=4.0)
            schedule = DHEFT().run(graph).schedule
            validate_schedule(graph, schedule)

    def test_never_catastrophically_worse_than_heft(self):
        for seed in range(8):
            graph = make_random_graph(seed=seed, v=50, ccr=3.0)
            dheft = DHEFT().run(graph).makespan
            heft = HEFT().run(graph).makespan
            assert dheft <= 1.25 * heft

    def test_single_task(self, single_task):
        result = DHEFT().run(single_task)
        assert result.makespan == 3.0
        assert result.n_duplicates == 0


def test_registry_exposes_extensions(fig1):
    from repro.baselines.registry import make_scheduler

    for name in ("DLS", "LA-HEFT", "DHEFT"):
        result = make_scheduler(name).run(fig1)
        assert result.schedule.is_complete()

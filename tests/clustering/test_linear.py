"""Unit tests for linear clustering and the cluster scheduler."""

import pytest

from repro.clustering.linear import ClusterScheduler, linear_clustering
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


class TestLinearClustering:
    def test_clusters_partition_tasks(self, fig1):
        clusters = linear_clustering(fig1)
        flat = [t for c in clusters for t in c]
        assert sorted(flat) == list(fig1.tasks())

    def test_first_cluster_is_the_mean_critical_path(self, fig1):
        """Fig. 1's mean-cost CP (Topcuoglu): T1 -> T2 -> T9 -> T10."""
        clusters = linear_clustering(fig1)
        assert clusters[0] == [0, 1, 8, 9]

    def test_each_cluster_is_a_chain(self, fig1):
        for cluster in linear_clustering(fig1):
            for a, b in zip(cluster, cluster[1:]):
                assert fig1.has_edge(a, b)

    def test_single_task(self, single_task):
        assert linear_clustering(single_task) == [[0]]

    def test_chain_yields_one_cluster(self, chain):
        assert len(linear_clustering(chain)) == 1

    def test_random_graphs_partition(self):
        for seed in range(3):
            graph = make_random_graph(seed=seed, v=50)
            clusters = linear_clustering(graph)
            flat = sorted(t for c in clusters for t in c)
            assert flat == list(graph.tasks())


class TestClusterScheduler:
    def test_fig1_feasible(self, fig1):
        result = ClusterScheduler().run(fig1)
        validate_schedule(fig1, result.schedule)
        assert result.schedule.is_complete()

    def test_at_most_n_procs_used(self):
        graph = make_random_graph(seed=2, v=60, n_procs=3)
        schedule = ClusterScheduler().run(graph).schedule
        used = {schedule.proc_of(t) for t in graph.tasks()}
        assert len(used) <= 3

    def test_cluster_mates_share_a_cpu(self, fig1):
        scheduler = ClusterScheduler()
        schedule = scheduler.run(fig1).schedule
        clusters = scheduler._merge(fig1, linear_clustering(fig1))
        for cluster in clusters:
            assert len({schedule.proc_of(t) for t in cluster}) == 1

    def test_merge_respects_cpu_count(self, fig1):
        scheduler = ClusterScheduler()
        merged = scheduler._merge(fig1, linear_clustering(fig1))
        assert len(merged) <= fig1.n_procs

    def test_random_graphs_feasible(self):
        for seed in range(4):
            graph = make_random_graph(seed=seed, v=50, ccr=2.0)
            validate_schedule(graph, ClusterScheduler().run(graph).schedule)

    def test_list_schedulers_beat_clustering_on_fig1(self, fig1):
        """The paper's claim that the clustering family is weaker holds
        on its own example (LC lands at 110 vs HDLTS's 73)."""
        from repro.core import HDLTS

        assert ClusterScheduler().run(fig1).makespan > HDLTS().run(fig1).makespan

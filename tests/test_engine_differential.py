"""Differential tests: fast engine vs reference path, bit-identical.

The incremental vectorized engine (``engine="fast"``) must reproduce the
reference scalar path (``engine="reference"``) *exactly* -- same CPU,
same start, same finish for every task copy, down to the last bit.  This
module checks that on:

* Hypothesis-generated random layered DAGs across the full HDLTS
  configuration grid (duplication on/off x append/insertion x every
  ``PriorityRule``);
* the fidelity-matrix graph shapes for every ported baseline;
* the paper's Table I worked example (full trace equality).

Any Hypothesis counterexample should be pinned below as an explicit
regression test with the shrunk graph inlined.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dls import DLS
from repro.baselines.heft import HEFT
from repro.baselines.peft import PEFT
from repro.baselines.pets import PETS
from repro.baselines.sdbats import SDBATS
from repro.core.hdlts import HDLTS, PriorityRule
from repro.generator import GeneratorConfig, generate_random_graph
from repro.model.task_graph import TaskGraph
from repro.workflows.paper_example import paper_example_graph

# long-running property suite: marked slow (still in the default run,
# deselect explicitly with -m 'not slow' for a quick loop)
pytestmark = pytest.mark.slow


def schedule_signature(schedule):
    """Every committed copy of every task, exact floats -- the object of
    the bit-identity guarantee."""
    sig = {}
    for task in schedule.graph.tasks():
        copies = schedule.copies(task)
        if not copies:
            continue
        sig[task] = tuple(
            sorted((c.proc, c.start, c.finish, c.duplicate) for c in copies)
        )
    return sig


def assert_identical(make_scheduler, graph):
    """Run fast and reference variants; demand exact equality."""
    fast = make_scheduler("fast").build_schedule(graph)
    ref = make_scheduler("reference").build_schedule(graph)
    assert schedule_signature(fast) == schedule_signature(ref)
    assert fast.makespan == ref.makespan


# --------------------------------------------------------------------------
# Hypothesis: random layered DAGs x the full HDLTS configuration grid
# --------------------------------------------------------------------------

@st.composite
def task_graphs(draw):
    """Small layered DAGs with adversarial float costs (mirrors the
    strategy in test_properties.py, plus zero-cost and equal-cost rows
    to stress tie-breaking)."""
    n_procs = draw(st.integers(min_value=1, max_value=4))
    n_levels = draw(st.integers(min_value=1, max_value=4))
    widths = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n_levels)]
    cost = st.floats(
        min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
    )
    comm = st.floats(
        min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False
    )

    graph = TaskGraph(n_procs)
    levels = []
    for width in widths:
        level = []
        for _ in range(width):
            if draw(st.booleans()):
                costs = [draw(cost)] * n_procs  # homogeneous row: tie bait
            else:
                costs = [draw(cost) for _ in range(n_procs)]
            level.append(graph.add_task(costs))
        levels.append(level)

    for upper, lower in zip(levels, levels[1:]):
        for child in lower:
            n_parents = draw(
                st.integers(min_value=1, max_value=len(upper))
            )
            parents = draw(
                st.permutations(upper).map(lambda p: p[:n_parents])
            )
            for parent in sorted(parents):
                graph.add_edge(parent, child, draw(comm))
    return graph.normalized()


@settings(max_examples=60, deadline=None)
@given(
    graph=task_graphs(),
    duplicate=st.booleans(),
    insertion=st.booleans(),
    priority=st.sampled_from(list(PriorityRule)),
)
def test_hdlts_fast_matches_reference(graph, duplicate, insertion, priority):
    assert_identical(
        lambda eng: HDLTS(
            duplicate_entry=duplicate,
            use_insertion=insertion,
            priority=priority,
            engine=eng,
        ),
        graph,
    )


@settings(max_examples=40, deadline=None)
@given(graph=task_graphs(), insertion=st.booleans())
def test_heft_fast_matches_reference(graph, insertion):
    assert_identical(
        lambda eng: HEFT(insertion=insertion, engine=eng), graph
    )


@settings(max_examples=40, deadline=None)
@given(graph=task_graphs(), insertion=st.booleans())
def test_dls_fast_matches_reference(graph, insertion):
    assert_identical(
        lambda eng: DLS(insertion=insertion, engine=eng), graph
    )


# --------------------------------------------------------------------------
# Fidelity-matrix shapes x every ported baseline
# --------------------------------------------------------------------------

_SHAPES = {
    "single-cpu": GeneratorConfig(v=40, n_procs=1),
    "comm-free": GeneratorConfig(v=40, ccr=0.0),
    "comm-heavy": GeneratorConfig(v=40, ccr=5.0),
    "homogeneous": GeneratorConfig(v=40, beta=0.0),
    "max-hetero": GeneratorConfig(v=40, beta=2.0),
    "tall": GeneratorConfig(v=40, alpha=0.5, single_entry=True),
    "flat": GeneratorConfig(v=40, alpha=2.5),
}

_BASELINES = {
    "HEFT": lambda eng: HEFT(engine=eng),
    "HEFT-noinsertion": lambda eng: HEFT(insertion=False, engine=eng),
    "PEFT": lambda eng: PEFT(engine=eng),
    "PETS": lambda eng: PETS(engine=eng),
    "PETS-rpt": lambda eng: PETS(variant="rpt", engine=eng),
    "SDBATS": lambda eng: SDBATS(engine=eng),
    "SDBATS-nodup": lambda eng: SDBATS(duplicate_entry=False, engine=eng),
    "DLS": lambda eng: DLS(engine=eng),
    "HDLTS": lambda eng: HDLTS(engine=eng),
    "HDLTS-insertion": lambda eng: HDLTS(use_insertion=True, engine=eng),
}


@pytest.mark.parametrize("shape", sorted(_SHAPES))
@pytest.mark.parametrize("name", sorted(_BASELINES))
def test_fidelity_shapes_identical(shape, name):
    config = _SHAPES[shape]
    for seed in range(3):
        graph = generate_random_graph(
            config, np.random.default_rng(seed)
        ).normalized()
        assert_identical(_BASELINES[name], graph)


# --------------------------------------------------------------------------
# Table I worked example: full trace equality, not just the schedule
# --------------------------------------------------------------------------

def test_table1_trace_identical():
    graph = paper_example_graph()
    fast = HDLTS(engine="fast").run(graph)
    ref = HDLTS(engine="reference").run(graph)
    assert fast.makespan == ref.makespan == 73.0
    assert fast.trace == ref.trace
    assert schedule_signature(fast.schedule) == schedule_signature(
        ref.schedule
    )


def test_invalid_engine_name_rejected():
    with pytest.raises(ValueError, match="engine"):
        HDLTS(engine="turbo")
    with pytest.raises(ValueError, match="engine"):
        HEFT(engine="turbo").build_schedule(paper_example_graph())

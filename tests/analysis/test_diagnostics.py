"""Unit tests for schedule diagnostics."""

import pytest

from repro.analysis.diagnostics import (
    bottleneck_chain,
    communication_volume,
    diagnose,
    load_imbalance,
)
from repro.core import HDLTS
from repro.schedule.schedule import Schedule
from tests.conftest import make_random_graph


class TestCommunicationVolume:
    def test_all_on_one_cpu_pays_nothing(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 0, 5.0)
        schedule.place(3, 0, 9.0)
        paid, total = communication_volume(diamond, schedule)
        assert paid == 0.0
        assert total == pytest.approx(5 + 1 + 2 + 3)

    def test_cross_cpu_edges_counted(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)   # A on P1
        schedule.place(1, 1, 7.0)   # B on P2: edge A->B (5) paid
        schedule.place(2, 0, 2.0)   # C on P1: free
        schedule.place(3, 0, 12.0)  # D on P1: edge B->D (2) paid
        paid, _ = communication_volume(diamond, schedule)
        assert paid == pytest.approx(5 + 2)

    def test_duplicate_copy_avoids_payment(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(0, 1, 0.0, duplicate=True)  # copy of A on P2
        schedule.place(1, 1, 4.0)   # B on P2 reads the local copy: free
        schedule.place(2, 0, 2.0)
        schedule.place(3, 0, 12.0)
        paid, _ = communication_volume(diamond, schedule)
        assert paid == pytest.approx(2)  # only B->D crosses


class TestLoadImbalance:
    def test_perfect_balance(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)          # busy 2 on P1
        schedule.place(1, 0, 2.0)          # +3 -> 5
        schedule.place(2, 1, 3.0)          # busy 4 on P2
        schedule.place(3, 1, 7.0, duration=1.0)  # +1 -> 5
        assert load_imbalance(schedule) == pytest.approx(1.0)

    def test_empty_schedule(self, diamond):
        assert load_imbalance(Schedule(diamond)) == 1.0

    def test_skewed(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 0, 5.0)
        schedule.place(3, 0, 9.0)
        # P1 does everything, P2 idle: max/mean = 2
        assert load_imbalance(schedule) == pytest.approx(2.0)


class TestBottleneckChain:
    def test_fig1_chain_reaches_time_zero(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        chain = bottleneck_chain(fig1, schedule)
        assert chain[0][0] == 9  # T10 finishes last
        last_task, last_reason = chain[-1]
        assert last_reason == "start"
        assert schedule.assignment(last_task).start == pytest.approx(0.0)

    def test_chain_is_connected(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        chain = bottleneck_chain(fig1, schedule)
        for (child, reason), (parent, _) in zip(chain, chain[1:]):
            if reason == "data":
                assert fig1.has_edge(parent, child)
            else:  # cpu: consecutive on the same CPU
                assert schedule.proc_of(parent) == schedule.proc_of(child) or (
                    any(
                        c.proc == schedule.proc_of(child)
                        for c in schedule.copies(parent)
                    )
                )

    def test_incomplete_schedule_rejected(self, fig1):
        with pytest.raises(ValueError, match="incomplete"):
            bottleneck_chain(fig1, Schedule(fig1))

    def test_random_graphs_terminate(self):
        for seed in range(4):
            graph = make_random_graph(seed=seed, v=60, ccr=3.0)
            schedule = HDLTS().run(graph).schedule
            chain = bottleneck_chain(graph, schedule)
            assert 1 <= len(chain) <= graph.n_tasks + 2


class TestDiagnose:
    def test_fields_consistent(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        report = diagnose(fig1, schedule)
        assert report.makespan == pytest.approx(73.0)
        assert len(report.busy_time) == 3
        assert 0.0 <= report.idle_fraction < 1.0
        assert report.load_imbalance >= 1.0
        assert report.n_duplicates == 2
        assert 0.0 <= report.comm_locality <= 1.0

    def test_format_is_readable(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        text = diagnose(fig1, schedule).format(fig1)
        assert "makespan" in text
        assert "bottleneck chain" in text
        assert "T10" in text

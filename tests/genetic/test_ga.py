"""Unit tests for the genetic-algorithm scheduler."""

import numpy as np
import pytest

from repro.genetic.ga import GAConfig, GeneticScheduler
from repro.schedule.validation import validate_schedule
from tests.conftest import make_random_graph


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population": 1},
            {"generations": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"elite": 40},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)


class TestOperators:
    def test_random_topological_orders_are_valid(self, fig1):
        rng = np.random.default_rng(0)
        for _ in range(20):
            order = GeneticScheduler._random_topological_order(fig1, rng)
            position = {t: i for i, t in enumerate(order)}
            for edge in fig1.edges():
                assert position[edge.src] < position[edge.dst]

    def test_order_crossover_preserves_topology(self, fig1):
        rng = np.random.default_rng(1)
        scheduler = GeneticScheduler()
        for _ in range(30):
            a = scheduler._random_topological_order(fig1, rng)
            b = scheduler._random_topological_order(fig1, rng)
            child = scheduler._order_crossover(a, b, rng)
            assert sorted(child) == sorted(a)
            position = {t: i for i, t in enumerate(child)}
            for edge in fig1.edges():
                assert position[edge.src] < position[edge.dst]

    def test_order_mutation_preserves_topology(self, fig1):
        rng = np.random.default_rng(2)
        scheduler = GeneticScheduler()
        order = scheduler._random_topological_order(fig1, rng)
        for _ in range(50):
            order = scheduler._order_mutation(fig1, order, rng)
            position = {t: i for i, t in enumerate(order)}
            for edge in fig1.edges():
                assert position[edge.src] < position[edge.dst]

    def test_decode_produces_feasible_schedule(self, fig1):
        scheduler = GeneticScheduler()
        rng = np.random.default_rng(3)
        order = scheduler._random_topological_order(fig1, rng)
        mapping = tuple(int(x) for x in rng.integers(0, 3, size=10))
        schedule = scheduler.decode(fig1, (order, mapping))
        validate_schedule(fig1, schedule)


class TestSearch:
    def test_fig1_reaches_nodup_optimum(self, fig1):
        """With the HEFT seed the GA finds 73 = the no-duplication
        optimum on the Fig. 1 graph (see the exact-solver tests)."""
        result = GeneticScheduler().run(fig1)
        validate_schedule(fig1, result.schedule)
        assert result.makespan == pytest.approx(73.0)

    def test_never_worse_than_its_heft_seed(self, fig1):
        from repro.baselines import HEFT

        ga = GeneticScheduler(GAConfig(generations=5, population=10))
        assert ga.run(fig1).makespan <= HEFT().run(fig1).makespan + 1e-9

    def test_deterministic_given_seed(self, fig1):
        a = GeneticScheduler(GAConfig(seed=5, generations=10)).run(fig1)
        b = GeneticScheduler(GAConfig(seed=5, generations=10)).run(fig1)
        assert a.makespan == b.makespan

    def test_more_generations_never_hurt(self):
        graph = make_random_graph(seed=4, v=30, ccr=2.0)
        short = GeneticScheduler(GAConfig(generations=3, seed=1)).run(graph)
        long = GeneticScheduler(GAConfig(generations=40, seed=1)).run(graph)
        # elitism makes best-so-far monotone within a run; across run
        # lengths with the same seed the prefix is identical
        assert long.makespan <= short.makespan + 1e-9

    def test_random_graph_feasible(self):
        graph = make_random_graph(seed=6, v=40, ccr=3.0)
        result = GeneticScheduler(GAConfig(generations=10)).run(graph)
        validate_schedule(graph, result.schedule)

    def test_registry_name(self, fig1):
        from repro.baselines.registry import make_scheduler

        result = make_scheduler("GA").run(fig1)
        assert result.schedule.is_complete()

"""Differential suite: batched multi-DAG kernel vs the scalar path.

The batch kernel (:mod:`repro.core.batch`) packs a replication batch of
same-shape compiled instances into ``(batch, n, p)`` struct-of-arrays
tensors and runs every batchable scheduler as one array program.  Its
contract is *bit*-identity: for every lane, the replayed schedule must
equal the scalar compiled path's schedule slot for slot -- same CPU,
same start, same finish, same duplicate flags -- and the makespan must
be the same float.  This suite checks that contract on:

* the paper's Fig. 1 worked example (degenerate identical-cost batch,
  including the B=1 edge),
* workflow families (one topology realized with independent cost
  draws -- the exact shape-group the harness batches),
* Hypothesis-driven random-fixed batches across sizes, CCRs and
  batch widths,
* every golden corpus entry whose pinned scheduler is batchable,

and, at the top of the stack, that a ragged ``"random"`` sweep (every
replication a different shape, so ``batch="auto"`` must fall back to
the scalar path) reports identical stats and observability counters
under both context settings.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.baselines.registry import make_scheduler
from repro.core.batch import (
    BATCHABLE,
    CompiledBatch,
    batchable_schedulers,
    instance_batchable,
    run_batch,
)
from repro.experiments.graphspec import GraphSpec
from repro.experiments.harness import SweepDefinition, run_sweep
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.model.compiled import compile_graph
from repro.qa.corpus import read_corpus
from repro.runtime.context import activate, current_context
from repro.workflows import paper_example_graph
from repro.workflows.fft import fft_topology
from repro.workflows.molecular import molecular_dynamics_topology
from repro.workflows.topology import realize_topology
from tests.test_engine_differential import schedule_signature

pytestmark = pytest.mark.slow

ALL_BATCHABLE = tuple(batchable_schedulers())


def assert_batch_matches_scalar(graphs, schedulers=ALL_BATCHABLE):
    """Every lane of every batched scheduler equals its scalar run."""
    compiled = [compile_graph(g) for g in graphs]
    for name in schedulers:
        assert instance_batchable(compiled[0], [name]), name
    batch = CompiledBatch(compiled)
    for name in schedulers:
        result = run_batch(batch, name)
        scheduler = make_scheduler(name)
        for lane, graph in enumerate(graphs):
            scalar = scheduler.run(graph).schedule
            batched = result.schedule_for(lane)
            assert result.makespans[lane] == scalar.makespan, (name, lane)
            assert schedule_signature(batched) == schedule_signature(
                scalar
            ), (name, lane)


# ----------------------------------------------------------------------
# Fig. 1 worked example: identical-cost lanes, B=1 and B=5
# ----------------------------------------------------------------------
@pytest.mark.parametrize("lanes", [1, 5])
def test_fig1_batch_identical_to_scalar(lanes):
    graphs = [paper_example_graph() for _ in range(lanes)]
    assert_batch_matches_scalar(graphs)


# ----------------------------------------------------------------------
# workflow families: one topology, independent cost draws per lane
# ----------------------------------------------------------------------
def _family(topology, n_procs, lanes, ccr):
    return [
        realize_topology(
            topology,
            n_procs,
            rng=np.random.default_rng(100 + i),
            ccr=ccr,
            beta=1.0,
            w_dag=50.0,
        ).normalized()
        for i in range(lanes)
    ]


@pytest.mark.parametrize(
    "label,graphs",
    [
        ("fft", _family(fft_topology(4), 3, 4, 1.0)),
        ("molecular", _family(molecular_dynamics_topology(), 4, 3, 3.0)),
    ],
)
def test_workflow_family_batch(label, graphs):
    assert_batch_matches_scalar(graphs)


# ----------------------------------------------------------------------
# Hypothesis: random-fixed batches across sizes / CCRs / widths
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    v=st.integers(min_value=10, max_value=40),
    ccr=st.sampled_from([0.5, 1.0, 5.0]),
    structure_seed=st.integers(min_value=0, max_value=10_000),
    lanes=st.integers(min_value=1, max_value=4),
    name=st.sampled_from(sorted(BATCHABLE)),
)
def test_hypothesis_random_fixed_batches(v, ccr, structure_seed, lanes, name):
    config = GeneratorConfig(v=v, ccr=ccr, single_entry=True)
    graphs = [
        generate_random_graph(
            config,
            np.random.default_rng(1_000 + i),
            np.random.default_rng(structure_seed),
        )
        for i in range(lanes)
    ]
    compiled = [compile_graph(g) for g in graphs]
    if not instance_batchable(compiled[0], [name]):
        return  # gated instances take the scalar path by design
    batch = CompiledBatch(compiled)
    result = run_batch(batch, name)
    scheduler = make_scheduler(name)
    for lane, graph in enumerate(graphs):
        scalar = scheduler.run(graph).schedule
        assert result.makespans[lane] == scalar.makespan, lane
        assert schedule_signature(result.schedule_for(lane)) == (
            schedule_signature(scalar)
        ), lane


# ----------------------------------------------------------------------
# golden corpus: replay the pinned makespans through the batched kernel
# ----------------------------------------------------------------------
def test_golden_corpus_through_batched_kernel():
    entries = read_corpus("tests/corpus/golden.jsonl")
    assert entries, "golden corpus missing"
    covered = 0
    for entry in entries:
        graph = entry.load_graph()
        for name, want in entry.expected.get("makespans", {}).items():
            if name not in BATCHABLE:
                continue
            scheduler = make_scheduler(name)
            prepared = scheduler.prepare(graph)
            compiled = compile_graph(prepared)
            if not instance_batchable(compiled, [name]):
                continue
            result = run_batch(CompiledBatch([compiled]), name)
            got = float(result.makespans[0])
            assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9), (
                entry.id,
                name,
            )
            scalar = scheduler.build_schedule(prepared)
            assert got == scalar.makespan, (entry.id, name)
            assert schedule_signature(result.schedule_for(0)) == (
                schedule_signature(scalar)
            ), (entry.id, name)
            covered += 1
    assert covered >= 1, "no golden entry exercised the batched kernel"


# ----------------------------------------------------------------------
# harness arms: auto vs off on shape-uniform and ragged sweeps
# ----------------------------------------------------------------------
def _run_arm(definition, reps, batch):
    with activate(current_context().with_(batch=batch)):
        return run_sweep(definition, reps=reps, seed=0)


def _assert_arms_identical(definition, reps):
    with obs.enabled_scope(True):
        with obs.scoped(merge_up=False) as reg_off:
            off = _run_arm(definition, reps, "off")
        with obs.scoped(merge_up=False) as reg_auto:
            auto = _run_arm(definition, reps, "auto")
    for x in definition.x_values:
        for name in definition.schedulers:
            a, b = off.stats[x][name], auto.stats[x][name]
            assert a.mean == b.mean, (x, name)
            assert a.std == b.std, (x, name)
            assert a.n == b.n, (x, name)
    assert reg_off.snapshot()["counters"] == reg_auto.snapshot()["counters"]


def test_harness_auto_vs_off_shape_uniform():
    """random-fixed sweep: one shape per x point rides the batch kernel."""
    definition = SweepDefinition(
        key="batch_diff_fixed",
        title="batched vs scalar (shape-uniform)",
        x_label="CCR",
        x_values=(1.0, 5.0),
        metric="slr",
        schedulers=("HDLTS", "HEFT", "PEFT", "SDBATS", "PETS"),
        graph=GraphSpec(
            "random-fixed",
            {"axis": "ccr", "single_entry": True, "structure_seed": 3, "v": 24},
        ),
    )
    _assert_arms_identical(definition, reps=4)


def test_harness_auto_vs_off_ragged_fallback():
    """plain random sweep: per-rep shapes differ, auto must fall back."""
    definition = SweepDefinition(
        key="batch_diff_ragged",
        title="batched vs scalar (ragged fallback)",
        x_label="CCR",
        x_values=(1.0,),
        metric="slr",
        schedulers=("HDLTS", "HEFT"),
        graph=GraphSpec("random", {"axis": "ccr", "v": 20}),
    )
    _assert_arms_identical(definition, reps=4)

"""CLI tests (argument parsing + command execution via main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "fig2", "--reps", "5", "--seed", "9"]
        )
        assert args.key == "fig2" and args.reps == 5 and args.seed == 9

    def test_figure_chunk_size_flag(self):
        args = build_parser().parse_args(
            ["figure", "fig2", "--workers", "4", "--chunk-size", "3"]
        )
        assert args.workers == 4 and args.chunk_size == 3
        # default rides along when the flag is omitted
        assert build_parser().parse_args(["figure", "fig2"]).chunk_size == 5
        assert build_parser().parse_args(["all-figures"]).chunk_size == 5

    def test_schedule_workflow_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--workflow", "bogus"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Penalty Values" in out
        assert "HDLTS" in out and "measured" in out

    def test_figure(self, capsys):
        assert main(["figure", "fig13", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "Molecular Dynamics" in out
        assert "best" in out

    def test_figure_validate_flag(self, capsys):
        assert main(["figure", "fig13", "--reps", "1", "--validate"]) == 0

    def test_figure_parallel_chunked(self, capsys):
        assert (
            main(
                [
                    "figure",
                    "fig13",
                    "--reps",
                    "2",
                    "--workers",
                    "2",
                    "--chunk-size",
                    "1",
                ]
            )
            == 0
        )
        assert "Molecular Dynamics" in capsys.readouterr().out

    def test_schedule_paper(self, capsys):
        assert main(["schedule", "--workflow", "paper"]) == 0
        out = capsys.readouterr().out
        assert "makespan=73.00" in out
        assert "P1 |" in out

    def test_schedule_with_trace(self, capsys):
        assert main(["schedule", "--workflow", "paper", "--trace"]) == 0
        assert "Penalty Values" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "workflow,size",
        [("fft", 4), ("montage", 20), ("molecular", 8), ("gaussian", 4), ("random", 30)],
    )
    def test_schedule_every_workflow(self, workflow, size, capsys):
        assert main(
            ["schedule", "--workflow", workflow, "--size", str(size)]
        ) == 0
        assert "makespan=" in capsys.readouterr().out

    def test_schedule_baseline(self, capsys):
        assert main(["schedule", "--scheduler", "HEFT"]) == 0
        assert "HEFT" in capsys.readouterr().out

    def test_generate(self, capsys):
        assert main(["generate", "--v", "50", "--ccr", "2"]) == 0
        out = capsys.readouterr().out
        assert "50 / " in out  # tasks/edges/CPUs line
        assert "realized CCR" in out and "serialism" in out

    def test_dynamic_noise_only(self, capsys):
        assert main(["dynamic", "--reps", "2", "--v", "20"]) == 0
        out = capsys.readouterr().out
        assert "online HDLTS" in out
        assert "static HDLTS" in out

    def test_dynamic_with_failure(self, capsys):
        assert (
            main(
                [
                    "dynamic",
                    "--reps",
                    "2",
                    "--v",
                    "20",
                    "--fail-proc",
                    "1",
                    "--fail-at",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failure of CPU 1" in out
        assert "cannot survive" in out


class TestExportAndDiagnose:
    def test_export_all_formats(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path)]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "paper_HDLTS.graph.json",
            "paper_HDLTS.schedule.json",
            "paper_HDLTS.dot",
        }
        assert "makespan 73.00" in capsys.readouterr().out

    def test_export_json_only(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path), "--format", "json"]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert all(n.endswith(".json") for n in names)
        assert len(names) == 2

    def test_export_round_trips(self, tmp_path):
        from repro.io import load_graph

        main(["export", "--out", str(tmp_path), "--format", "json"])
        graph = load_graph(tmp_path / "paper_HDLTS.graph.json")
        assert graph.n_tasks == 10

    def test_diagnose(self, capsys):
        assert main(["diagnose"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck chain" in out
        assert "makespan          73.00" in out

    def test_diagnose_baseline(self, capsys):
        assert main(["diagnose", "--scheduler", "HEFT"]) == 0
        assert "makespan          80.00" in capsys.readouterr().out


class TestRunResume:
    def test_run_creates_manifest_and_ledger(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert (
            main(
                [
                    "run", "fig13", "--reps", "2", "--seed", "0",
                    "--workers", "2", "--chunk-size", "1",
                    "--run-dir", str(run_dir),
                ]
            )
            == 0
        )
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "chunks.jsonl").exists()
        captured = capsys.readouterr()
        assert "Molecular Dynamics" in captured.out
        assert "chunk 10/10" in captured.err

    def test_run_refuses_existing_run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        args = [
            "run", "fig13", "--reps", "1", "--run-dir", str(run_dir),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        assert "resume" in capsys.readouterr().err

    def test_resume_replays_completed_run(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert (
            main(
                [
                    "run", "fig13", "--reps", "2", "--seed", "4",
                    "--run-dir", str(run_dir),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert main(["resume", str(run_dir)]) == 0
        assert capsys.readouterr().out == first

    def test_resume_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "nope")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_figure_start_method_flag(self, capsys):
        assert (
            main(
                [
                    "figure", "fig13", "--reps", "2", "--workers", "2",
                    "--chunk-size", "1", "--start-method", "serial",
                ]
            )
            == 0
        )
        assert "Molecular Dynamics" in capsys.readouterr().out

    def test_run_matches_figure_output_table(self, tmp_path, capsys):
        assert main(["figure", "fig13", "--reps", "2", "--seed", "1"]) == 0
        table = capsys.readouterr().out
        assert (
            main(
                [
                    "run", "fig13", "--reps", "2", "--seed", "1",
                    "--workers", "2", "--chunk-size", "1",
                    "--start-method", "spawn",
                    "--run-dir", str(tmp_path / "run"),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == table


class TestErrorHandling:
    def test_unknown_scheduler_exits_2(self, capsys):
        assert main(["schedule", "--scheduler", "NOPE"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_unknown_figure_exits_2(self, capsys):
        assert main(["figure", "fig99", "--reps", "1"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_bad_generator_value_exits_2(self, capsys):
        assert main(["generate", "--v", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestObservability:
    def test_profile_fig1_lowercase_scheduler(self, capsys):
        assert main(["profile", "--workflow", "fig1", "--scheduler", "hdlts"]) == 0
        out = capsys.readouterr().out
        assert "profile: fig1 workflow" in out
        assert "73.00" in out
        assert "hdlts phase breakdown:" in out
        assert "HDLTS/eft_vector" in out
        assert "HDLTS/commit" in out

    def test_profile_json_document(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert (
            main(
                [
                    "profile",
                    "--workflow",
                    "fig1",
                    "--scheduler",
                    "HDLTS",
                    "--repeat",
                    "3",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        import json

        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.profile/1"
        assert doc["workflow"]["name"] == "fig1"
        assert doc["workflow"]["n_tasks"] == 10
        assert doc["repeat"] == 3
        (run,) = doc["runs"]
        assert run["scheduler"] == "HDLTS"
        assert run["makespan"] == 73.0
        assert run["runs_timed"] == 3
        assert run["counters"]["decisions"] == 30  # 10 decisions x 3 runs
        assert run["counters"]["eft_evaluations"] == 216
        assert run["counters"]["duplication_accepted"] == 6
        phase_names = {p["phase"] for p in run["phases"]}
        assert "HDLTS" in phase_names
        assert "HDLTS/eft_vector" in phase_names

    def test_profile_multiple_schedulers(self, capsys):
        assert (
            main(["profile", "--workflow", "fig1", "--scheduler", "HDLTS,HEFT"])
            == 0
        )
        out = capsys.readouterr().out
        assert "HDLTS" in out and "HEFT" in out
        assert "80.00" in out  # HEFT's canonical Fig. 1 makespan

    def test_schedule_events_one_per_decision(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "events.jsonl"
        assert (
            main(
                ["schedule", "--workflow", "paper", "--events", str(out_path)]
            )
            == 0
        )
        events = [
            json.loads(line) for line in out_path.read_text().splitlines()
        ]
        decisions = [e for e in events if e["event"] == "scheduler.decision"]
        assert len(decisions) == 10  # one per mapping decision
        assert [d["step"] for d in decisions] == list(range(1, 11))
        assert all("chosen_proc" in d and "eft" in d for d in decisions)
        runs = [e for e in events if e["event"] == "scheduler.run"]
        assert len(runs) == 1 and runs[0]["makespan"] == 73.0
        assert "events written to" in capsys.readouterr().err

    def test_schedule_metrics_flag(self, capsys):
        assert main(["schedule", "--workflow", "paper", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "observability metrics:" in out
        assert "HDLTS/decisions" in out
        assert "HDLTS/eft_evaluations" in out

    def test_figure_metrics_flag(self, capsys):
        assert main(["figure", "fig13", "--reps", "1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "observability metrics:" in out
        assert "sweep/replications" in out

    def test_dynamic_events(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "dyn.jsonl"
        assert (
            main(
                [
                    "dynamic",
                    "--reps",
                    "1",
                    "--v",
                    "20",
                    "--events",
                    str(out_path),
                ]
            )
            == 0
        )
        events = [
            json.loads(line) for line in out_path.read_text().splitlines()
        ]
        kinds = {e["event"] for e in events}
        assert "dynamic.dispatch" in kinds
        assert "sim.task_finish" in kinds

    def test_profile_leaves_obs_disabled(self):
        from repro import obs

        main(["profile", "--workflow", "fig1", "--scheduler", "HDLTS"])
        assert not obs.enabled()
        assert not obs.get_bus().active


class TestRunTelemetry:
    def _run(self, run_dir, *extra):
        return main(
            [
                "run", "fig13", "--reps", "2", "--chunk-size", "1",
                "--run-dir", str(run_dir), *extra,
            ]
        )

    def test_run_writes_heartbeats_by_default(self, tmp_path, capsys):
        import json

        run_dir = tmp_path / "run"
        assert self._run(run_dir) == 0
        beats = list((run_dir / "telemetry").glob("heartbeat-*.json"))
        assert beats
        doc = json.loads(beats[0].read_text())
        assert doc["role"] == "main" and doc["chunks_done"] == 10

    def test_run_trace_produces_chrome_trace(self, tmp_path, capsys):
        import json

        run_dir = tmp_path / "run"
        assert self._run(run_dir, "--trace") == 0
        trace = json.loads((run_dir / "telemetry" / "trace.json").read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        kinds = {
            e["cat"] for e in trace["traceEvents"] if e.get("ph") == "X"
        }
        assert kinds >= {
            "sweep.run", "sweep.chunk", "sweep.replication", "scheduler.run"
        }
        assert "spans merged into" in capsys.readouterr().err

    def test_run_trace_parallel_has_worker_lanes(self, tmp_path, capsys):
        import json

        run_dir = tmp_path / "run"
        assert (
            self._run(
                run_dir, "--trace", "--workers", "2",
                "--start-method", "spawn",
            )
            == 0
        )
        trace = json.loads((run_dir / "telemetry" / "trace.json").read_text())
        lanes = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        ]
        assert sum(1 for n in lanes if n.startswith("worker ")) == 2
        assert sum(1 for n in lanes if n.startswith("main ")) == 1

    def test_run_metrics_writes_prometheus_textfile(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert self._run(run_dir, "--metrics") == 0
        prom = (run_dir / "telemetry" / "metrics.prom").read_text()
        assert "repro_sweep_replications_total 10" in prom
        assert "# TYPE repro_sweep_chunk_wall_seconds summary" in prom
        assert "observability metrics:" in capsys.readouterr().out

    def test_run_events_defaults_into_telemetry_dir(self, tmp_path, capsys):
        import json

        run_dir = tmp_path / "run"
        assert self._run(run_dir, "--events") == 0
        events_path = run_dir / "telemetry" / "events.jsonl"
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        chunk_events = [e for e in events if e["event"] == "sweep.chunk"]
        assert len(chunk_events) == 10  # no double emission per chunk
        assert all(e["recorded"] for e in chunk_events)

    def test_run_events_explicit_path(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        events_path = tmp_path / "ev.jsonl"
        assert self._run(run_dir, "--events", str(events_path)) == 0
        assert events_path.exists()

    def test_status_json_on_completed_run(self, tmp_path, capsys):
        import json

        run_dir = tmp_path / "run"
        assert self._run(run_dir) == 0
        capsys.readouterr()
        assert main(["status", str(run_dir), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["schema"] == "repro.status/1"
        assert status["complete"] is True
        assert status["chunks_done"] == status["chunks_total"] == 10

    def test_status_counts_interrupted_run(self, tmp_path, capsys):
        import json

        from repro.experiments import get_figure
        from repro.runtime.context import RunContext
        from repro.runtime.session import ExperimentSession

        run_dir = tmp_path / "run"
        session = ExperimentSession.create(
            run_dir, RunContext(chunk_size=1), [get_figure("fig13")], reps=2
        )
        session.record_chunk("fig13", 0, 1.0, 0, 1, [{"HDLTS": 1.0}], {}, 0.1)
        session.record_chunk("fig13", 0, 1.0, 1, 2, [{"HDLTS": 1.1}], {}, 0.1)
        session.record_chunk("fig13", 1, 2.0, 0, 1, [{"HDLTS": 1.2}], {}, 0.1)
        session.close()
        assert main(["status", str(run_dir), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is False
        assert status["chunks_done"] == 3
        assert status["chunks_total"] == 10
        assert status["eta_s"] > 0

    def test_top_once_on_completed_run(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert self._run(run_dir) == 0
        capsys.readouterr()
        assert main(["top", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "10/10" in out and "complete" in out

    def test_top_once_on_interrupted_run(self, tmp_path, capsys):
        from repro.experiments import get_figure
        from repro.runtime.context import RunContext
        from repro.runtime.session import ExperimentSession

        run_dir = tmp_path / "run"
        session = ExperimentSession.create(
            run_dir, RunContext(chunk_size=1), [get_figure("fig13")], reps=2
        )
        session.record_chunk("fig13", 0, 1.0, 0, 1, [{"HDLTS": 1.0}], {}, 0.1)
        session.close()
        assert main(["top", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "1/10" in out and "running" in out

    def test_top_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope"), "--once"]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_resume_inherits_trace_from_manifest(self, tmp_path, capsys):
        import json

        run_dir = tmp_path / "run"
        assert self._run(run_dir, "--trace") == 0
        capsys.readouterr()
        assert main(["resume", str(run_dir)]) == 0
        # replayed runs re-trace from the parent process (all chunks
        # come from the ledger, so only parent spans appear)
        trace = json.loads((run_dir / "telemetry" / "trace.json").read_text())
        assert any(
            e.get("cat") == "sweep.run" for e in trace["traceEvents"]
        )

    def test_run_outputs_unchanged_by_telemetry(self, tmp_path, capsys):
        plain = tmp_path / "plain"
        traced = tmp_path / "traced"
        assert self._run(plain) == 0
        out_plain = capsys.readouterr().out.replace(str(plain), "RUN")
        assert self._run(traced, "--trace") == 0
        out_traced = capsys.readouterr().out.replace(str(traced), "RUN")
        assert out_traced == out_plain

    def test_schedule_trace_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "schedule", "--workflow", "paper",
                    "--trace-json", str(out_path),
                ]
            )
            == 0
        )
        doc = json.loads(out_path.read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        cats = {e["cat"] for e in events}
        assert "scheduler.run" in cats
        assert "phase" in cats  # the per-phase bridge was scoped on
        assert "schedule" in cats  # the Gantt overlay
        lanes = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
            and e["pid"] == 2
        ]
        assert lanes == ["P1", "P2", "P3"]
        assert "chrome://tracing" in capsys.readouterr().err

"""CLI tests (argument parsing + command execution via main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "fig2", "--reps", "5", "--seed", "9"]
        )
        assert args.key == "fig2" and args.reps == 5 and args.seed == 9

    def test_schedule_workflow_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--workflow", "bogus"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Penalty Values" in out
        assert "HDLTS" in out and "measured" in out

    def test_figure(self, capsys):
        assert main(["figure", "fig13", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "Molecular Dynamics" in out
        assert "best" in out

    def test_figure_validate_flag(self, capsys):
        assert main(["figure", "fig13", "--reps", "1", "--validate"]) == 0

    def test_schedule_paper(self, capsys):
        assert main(["schedule", "--workflow", "paper"]) == 0
        out = capsys.readouterr().out
        assert "makespan=73.00" in out
        assert "P1 |" in out

    def test_schedule_with_trace(self, capsys):
        assert main(["schedule", "--workflow", "paper", "--trace"]) == 0
        assert "Penalty Values" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "workflow,size",
        [("fft", 4), ("montage", 20), ("molecular", 8), ("gaussian", 4), ("random", 30)],
    )
    def test_schedule_every_workflow(self, workflow, size, capsys):
        assert main(
            ["schedule", "--workflow", workflow, "--size", str(size)]
        ) == 0
        assert "makespan=" in capsys.readouterr().out

    def test_schedule_baseline(self, capsys):
        assert main(["schedule", "--scheduler", "HEFT"]) == 0
        assert "HEFT" in capsys.readouterr().out

    def test_generate(self, capsys):
        assert main(["generate", "--v", "50", "--ccr", "2"]) == 0
        out = capsys.readouterr().out
        assert "50 / " in out  # tasks/edges/CPUs line
        assert "realized CCR" in out and "serialism" in out

    def test_dynamic_noise_only(self, capsys):
        assert main(["dynamic", "--reps", "2", "--v", "20"]) == 0
        out = capsys.readouterr().out
        assert "online HDLTS" in out
        assert "static HDLTS" in out

    def test_dynamic_with_failure(self, capsys):
        assert (
            main(
                [
                    "dynamic",
                    "--reps",
                    "2",
                    "--v",
                    "20",
                    "--fail-proc",
                    "1",
                    "--fail-at",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failure of CPU 1" in out
        assert "cannot survive" in out


class TestExportAndDiagnose:
    def test_export_all_formats(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path)]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "paper_HDLTS.graph.json",
            "paper_HDLTS.schedule.json",
            "paper_HDLTS.dot",
        }
        assert "makespan 73.00" in capsys.readouterr().out

    def test_export_json_only(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path), "--format", "json"]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert all(n.endswith(".json") for n in names)
        assert len(names) == 2

    def test_export_round_trips(self, tmp_path):
        from repro.io import load_graph

        main(["export", "--out", str(tmp_path), "--format", "json"])
        graph = load_graph(tmp_path / "paper_HDLTS.graph.json")
        assert graph.n_tasks == 10

    def test_diagnose(self, capsys):
        assert main(["diagnose"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck chain" in out
        assert "makespan          73.00" in out

    def test_diagnose_baseline(self, capsys):
        assert main(["diagnose", "--scheduler", "HEFT"]) == 0
        assert "makespan          80.00" in capsys.readouterr().out


class TestErrorHandling:
    def test_unknown_scheduler_exits_2(self, capsys):
        assert main(["schedule", "--scheduler", "NOPE"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_unknown_figure_exits_2(self, capsys):
        assert main(["figure", "fig99", "--reps", "1"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_bad_generator_value_exits_2(self, capsys):
        assert main(["generate", "--v", "0"]) == 2
        assert "error" in capsys.readouterr().err

"""Unit tests for multi-workflow composition."""

import numpy as np
import pytest

from repro.core import HDLTS
from repro.baselines import HEFT
from repro.multi.compose import compose, tenant_report
from repro.schedule.validation import validate_schedule
from repro.workflows import fft_workflow, paper_example_graph


@pytest.fixture
def two_tenants():
    return [
        paper_example_graph(),
        fft_workflow(4, 3, rng=np.random.default_rng(0), ccr=1.0),
    ]


class TestCompose:
    def test_task_count_is_sum_plus_pseudos(self, two_tenants):
        composite = compose(two_tenants)
        expected = sum(g.n_tasks for g in two_tenants) + 2
        assert composite.graph.n_tasks == expected

    def test_single_entry_exit(self, two_tenants):
        composite = compose(two_tenants)
        assert composite.graph.entry_task == composite.entry
        assert composite.graph.exit_task == composite.exit

    def test_costs_and_edges_preserved(self, two_tenants):
        composite = compose(two_tenants)
        original = two_tenants[0]
        mapping = composite.mappings[0]
        for task in original.tasks():
            assert list(composite.graph.cost_row(mapping[task])) == list(
                original.cost_row(task)
            )
        for edge in original.edges():
            assert composite.graph.comm_cost(
                mapping[edge.src], mapping[edge.dst]
            ) == pytest.approx(edge.cost)

    def test_no_cross_tenant_edges(self, two_tenants):
        composite = compose(two_tenants)
        sets = [set(m.values()) for m in composite.mappings]
        pseudos = {composite.entry, composite.exit}
        for edge in composite.graph.edges():
            if edge.src in pseudos or edge.dst in pseudos:
                continue
            tenant_src = next(i for i, s in enumerate(sets) if edge.src in s)
            tenant_dst = next(i for i, s in enumerate(sets) if edge.dst in s)
            assert tenant_src == tenant_dst

    def test_names_prefixed(self, two_tenants):
        composite = compose(two_tenants)
        assert composite.graph.name(composite.mappings[0][0]) == "w0:T1"

    def test_platform_mismatch_rejected(self, two_tenants):
        from repro.model.task_graph import TaskGraph

        other = TaskGraph(5)
        other.add_task([1] * 5)
        with pytest.raises(ValueError, match="same platform"):
            compose([two_tenants[0], other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compose([])


class TestScheduling:
    def test_shared_schedule_feasible(self, two_tenants):
        composite = compose(two_tenants)
        result = HDLTS().run(composite.graph)
        validate_schedule(composite.graph, result.schedule)

    def test_tenant_reports(self, two_tenants):
        composite = compose(two_tenants)
        scheduler = HEFT()
        schedule = scheduler.run(composite.graph).schedule
        reports, unfairness = tenant_report(composite, schedule, scheduler)
        assert len(reports) == 2
        for report in reports:
            # sharing a platform can never beat having it alone... except
            # heuristics are not monotone; allow a small tolerance
            assert report.slowdown >= 0.8
            assert report.makespan > 0
        assert unfairness >= 1.0

    def test_shared_makespan_bounded_by_serial_execution(self, two_tenants):
        """Scheduling both tenants together is never worse than running
        them back-to-back (the composite schedule can always emulate
        that)... for a heuristic this is not guaranteed, but it should
        hold comfortably on these instances."""
        composite = compose(two_tenants)
        shared = HEFT().run(composite.graph).makespan
        serial = sum(HEFT().run(g).makespan for g in two_tenants)
        assert shared <= serial

"""Unit tests for the energy model and slack reclamation."""

import pytest

from repro.core import HDLTS
from repro.baselines import HEFT, SDBATS
from repro.energy.model import EnergyModel
from repro.energy.slack import reclaim_slack, task_slack
from repro.schedule.schedule import Schedule
from tests.conftest import make_random_graph


class TestEnergyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(0)
        with pytest.raises(ValueError):
            EnergyModel(2, busy_power=[1.0])  # wrong arity
        with pytest.raises(ValueError):
            EnergyModel(2, busy_power=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(2, busy_power=1.0, idle_power=2.0)  # idle > busy

    def test_hand_computed_energy(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)   # busy 2 on P1
        schedule.place(1, 0, 2.0)   # busy 3 -> P1 busy 5
        schedule.place(2, 1, 3.0)   # busy 4 on P2
        schedule.place(3, 1, 7.0)   # busy 2 -> P2 busy 6; makespan 9
        model = EnergyModel(2, busy_power=10.0, idle_power=1.0)
        report = model.energy(schedule)
        assert report.makespan == 9.0
        assert report.busy_energy == pytest.approx((5 + 6) * 10)
        assert report.idle_energy == pytest.approx((4 + 3) * 1)
        assert report.total == pytest.approx(110 + 7)
        assert report.duplication_energy == 0.0

    def test_per_cpu_powers(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 0, 5.0)
        schedule.place(3, 0, 9.0)  # P1 busy 11, makespan 11; P2 idle 11
        model = EnergyModel(2, busy_power=[10.0, 20.0], idle_power=[1.0, 2.0])
        report = model.energy(schedule)
        assert report.busy_energy == pytest.approx(11 * 10)
        assert report.idle_energy == pytest.approx(0 * 1 + 11 * 2)

    def test_duplication_energy_isolated(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        model = EnergyModel(3)
        report = model.energy(schedule)
        # duplicates: T1 on P1 (14) and P2 (16) at busy power 10
        assert report.duplication_energy == pytest.approx((14 + 16) * 10)
        assert 0 < report.duplication_overhead < 0.3

    def test_duplication_costs_energy_but_saves_time(self, fig1):
        """The paper's Section II-B trade-off, quantified."""
        model = EnergyModel(3)
        with_dup = HDLTS().run(fig1)
        without = HDLTS(duplicate_entry=False).run(fig1)
        assert with_dup.makespan <= without.makespan
        busy_with = model.energy(with_dup.schedule).busy_energy
        busy_without = model.energy(without.schedule).busy_energy
        assert busy_with > busy_without

    def test_wrong_platform_rejected(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        with pytest.raises(ValueError, match="CPUs"):
            EnergyModel(5).energy(schedule)


class TestSlack:
    def test_critical_tasks_have_zero_slack(self, fig1):
        from repro.analysis.diagnostics import bottleneck_chain

        schedule = HDLTS().run(fig1).schedule
        slack = task_slack(fig1, schedule)
        chain = bottleneck_chain(fig1, schedule)
        # data-bound links of the realized critical chain have no slack
        for (child, reason), (parent, _) in zip(chain, chain[1:]):
            if reason == "data" and schedule.proc_of(parent) == schedule.proc_of(child):
                assert slack[parent] == pytest.approx(0.0, abs=1e-6)

    def test_exit_task_slack_zero(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        slack = task_slack(fig1, schedule)
        assert slack[9] == pytest.approx(0.0)

    def test_incomplete_schedule_rejected(self, fig1):
        with pytest.raises(ValueError, match="incomplete"):
            task_slack(fig1, Schedule(fig1))

    def test_slack_nonnegative(self):
        graph = make_random_graph(seed=3, v=50, ccr=2.0)
        schedule = HEFT().run(graph).schedule
        assert all(s >= 0 for s in task_slack(graph, schedule).values())


class TestReclaim:
    def test_makespan_preserved(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        stretched, scales = reclaim_slack(fig1, schedule)
        assert stretched.makespan == pytest.approx(schedule.makespan)
        assert all(s >= 1.0 for s in scales.values())

    def test_no_overlaps_after_stretching(self):
        """Stretched slots must still be mutually disjoint (the Schedule
        container enforces it on place; a violation would raise)."""
        for seed in range(4):
            graph = make_random_graph(seed=seed, v=40, ccr=2.0)
            schedule = SDBATS().run(graph).schedule
            stretched, _ = reclaim_slack(graph, schedule)
            assert stretched.is_complete()

    def test_children_still_receive_data_in_time(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        stretched, _ = reclaim_slack(fig1, schedule)
        for task in fig1.tasks():
            for child in fig1.successors(task):
                arrival = stretched.arrival_time(
                    task, child, stretched.proc_of(child)
                )
                assert arrival <= stretched.start_of(child) + 1e-6

    def test_energy_reduced_at_same_makespan(self):
        graph = make_random_graph(seed=7, v=60, ccr=2.0)
        schedule = HEFT().run(graph).schedule
        model = EnergyModel(graph.n_procs)
        baseline = model.energy(schedule)
        stretched, scales = reclaim_slack(graph, schedule)
        saved = model.energy_with_frequencies(stretched, scales)
        assert saved.makespan == pytest.approx(baseline.makespan)
        assert saved.total < baseline.total

    def test_max_scale_cap_respected(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        _, scales = reclaim_slack(fig1, schedule, max_scale=1.5)
        assert all(s <= 1.5 + 1e-12 for s in scales.values())
        with pytest.raises(ValueError):
            reclaim_slack(fig1, schedule, max_scale=0.5)

    def test_duplicates_not_scaled(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        stretched, scales = reclaim_slack(fig1, schedule)
        for dup in stretched.duplicates():
            assert (dup.task, dup.proc) not in scales

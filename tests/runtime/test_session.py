"""Unit tests for ExperimentSession: manifest schema and chunk ledger."""

import json

import pytest

from repro.experiments import get_figure
from repro.runtime.context import RunContext
from repro.runtime.session import ExperimentSession


def _new_session(tmp_path, reps=4, **ctx_kwargs):
    context = RunContext(**ctx_kwargs)
    return ExperimentSession.create(
        tmp_path / "run", context, [get_figure("fig13")], reps=reps
    )


class TestManifest:
    def test_create_writes_schema_version_context_and_sweeps(self, tmp_path):
        session = _new_session(tmp_path, reps=6, seed=3, workers=2)
        doc = json.loads((session.path / ExperimentSession.MANIFEST).read_text())
        from repro import __version__

        assert doc["schema"] == ExperimentSession.SCHEMA
        assert doc["version"] == __version__
        assert doc["reps"] == 6
        assert doc["context"] == RunContext(seed=3, workers=2).to_dict()
        assert [s["key"] for s in doc["sweeps"]] == ["fig13"]
        assert doc["sweeps"][0]["graph"]["factory"] == "molecular"
        assert doc["created"]

    def test_create_refuses_existing_run_dir(self, tmp_path):
        _new_session(tmp_path)
        with pytest.raises(FileExistsError, match="resume"):
            _new_session(tmp_path)

    def test_open_round_trips(self, tmp_path):
        created = _new_session(tmp_path, reps=5, seed=9, chunk_size=2)
        reopened = ExperimentSession.open(created.path)
        assert reopened.context == created.context
        assert reopened.reps == 5
        assert [d.key for d in reopened.definitions] == ["fig13"]
        assert reopened.definitions[0] == created.definitions[0]

    def test_open_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExperimentSession.open(tmp_path / "nope")

    def test_open_rejects_unknown_schema(self, tmp_path):
        session = _new_session(tmp_path)
        manifest = session.path / ExperimentSession.MANIFEST
        doc = json.loads(manifest.read_text())
        doc["schema"] = "repro.run/99"
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            ExperimentSession.open(session.path)

    def test_closure_definitions_rejected(self, tmp_path):
        from tests.experiments.test_harness import tiny_closure_sweep

        with pytest.raises(ValueError, match="closure"):
            ExperimentSession.create(
                tmp_path / "run", RunContext(), [tiny_closure_sweep()], reps=2
            )


class TestLedger:
    def test_record_and_replay(self, tmp_path):
        session = _new_session(tmp_path)
        values = [{"HDLTS": 1.5, "HEFT": 1.75}]
        session.record_chunk("fig13", 0, 1.0, 0, 1, values, {}, 0.01)
        session.record_chunk("fig13", 0, 1.0, 1, 2, values, {}, 0.02)
        session.close()
        completed = session.completed_chunks("fig13")
        assert set(completed) == {(0, 0, 1), (0, 1, 2)}
        assert completed[(0, 0, 1)]["values"] == values

    def test_floats_round_trip_exactly(self, tmp_path):
        session = _new_session(tmp_path)
        value = 1.0 / 3.0 + 1e-16
        session.record_chunk("fig13", 0, 1.0, 0, 1, [{"HDLTS": value}], {}, 0.0)
        session.close()
        replayed = session.completed_chunks("fig13")[(0, 0, 1)]
        assert replayed["values"][0]["HDLTS"] == value

    def test_other_sweeps_filtered_out(self, tmp_path):
        session = _new_session(tmp_path)
        session.record_chunk("fig13", 0, 1.0, 0, 1, [], {}, 0.0)
        session.record_chunk("other", 0, 1.0, 0, 1, [], {}, 0.0)
        session.close()
        assert set(session.completed_chunks("fig13")) == {(0, 0, 1)}

    def test_torn_tail_tolerated(self, tmp_path):
        session = _new_session(tmp_path)
        session.record_chunk("fig13", 0, 1.0, 0, 1, [], {}, 0.0)
        session.record_chunk("fig13", 0, 1.0, 1, 2, [], {}, 0.0)
        session.close()
        ledger = session.path / ExperimentSession.LEDGER
        with open(ledger, "a", encoding="utf-8") as fh:
            fh.write('{"sweep": "fig13", "x_index": 0, "rep_lo": 2, "rep')
        completed = session.completed_chunks("fig13")
        assert set(completed) == {(0, 0, 1), (0, 1, 2)}

    def test_torn_line_discards_everything_after(self, tmp_path):
        session = _new_session(tmp_path)
        session.record_chunk("fig13", 0, 1.0, 0, 1, [], {}, 0.0)
        session.close()
        ledger = session.path / ExperimentSession.LEDGER
        whole = json.dumps(
            {"sweep": "fig13", "x_index": 0, "x": 1.0, "rep_lo": 1,
             "rep_hi": 2, "values": [], "metrics": {}, "wall": 0.0}
        )
        with open(ledger, "a", encoding="utf-8") as fh:
            fh.write("{broken\n" + whole + "\n")
        # the line after the tear cannot be trusted to be in order
        assert set(session.completed_chunks("fig13")) == {(0, 0, 1)}

    def test_context_manager_closes(self, tmp_path):
        with _new_session(tmp_path) as session:
            session.record_chunk("fig13", 0, 1.0, 0, 1, [], {}, 0.0)
        assert session._ledger_fh is None

"""Unit tests for run telemetry: heartbeats, run_status, repro top."""

import json
import time

import pytest

from repro.experiments import get_figure
from repro.experiments.parallel import run_sweep_parallel
from repro.runtime.context import RunContext
from repro.runtime.session import ExperimentSession
from repro.runtime.telemetry import (
    HEARTBEAT_SCHEMA,
    STATUS_SCHEMA,
    HeartbeatWriter,
    format_top,
    load_heartbeats,
    run_status,
    telemetry_dir,
    watch,
)


@pytest.fixture
def run_dir(tmp_path):
    return tmp_path / "run"


def _new_session(run_dir, reps=4, chunk_size=2, **ctx_kwargs):
    context = RunContext(chunk_size=chunk_size, **ctx_kwargs)
    return ExperimentSession.create(
        run_dir, context, [get_figure("fig13")], reps=reps
    )


class TestHeartbeatWriter:
    def test_beat_writes_schema_and_resources(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, role="worker")
        writer.beat(force=True)
        doc = json.loads(writer.path.read_text())
        assert doc["schema"] == HEARTBEAT_SCHEMA
        assert doc["pid"] == writer.pid
        assert doc["role"] == "worker"
        assert doc["rss_kb"] > 0
        assert doc["cpu_user_s"] >= 0.0
        assert doc["chunks_done"] == 0

    def test_bump_counts_chunks_exactly(self, tmp_path):
        writer = HeartbeatWriter(tmp_path)
        writer.bump()
        writer.bump(last_event_ts=123.0)
        doc = json.loads(writer.path.read_text())
        assert doc["chunks_done"] == 2
        assert doc["last_event_ts"] == 123.0

    def test_beat_throttles(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, throttle_s=60.0)
        writer.beat(force=True)
        writer.beat(chunks_done=5)  # throttled: file keeps the old count
        doc = json.loads(writer.path.read_text())
        assert doc["chunks_done"] == 0
        writer.beat(force=True)
        assert json.loads(writer.path.read_text())["chunks_done"] == 5

    def test_no_torn_reads(self, tmp_path):
        # the atomic tmp+replace protocol never leaves a partial file
        writer = HeartbeatWriter(tmp_path)
        for _ in range(20):
            writer.bump()
            json.loads(writer.path.read_text())


class TestLoadHeartbeats:
    def test_missing_directory_is_empty(self, run_dir):
        assert load_heartbeats(run_dir) == []

    def test_skips_garbage_and_foreign_files(self, run_dir):
        tdir = telemetry_dir(run_dir)
        HeartbeatWriter(tdir, role="worker").beat(force=True)
        (tdir / "heartbeat-99999.json").write_text("{half a doc")
        (tdir / "heartbeat-88888.json").write_text('{"schema": "other"}')
        beats = load_heartbeats(run_dir)
        assert len(beats) == 1 and beats[0]["role"] == "worker"

    def test_main_sorts_first(self, run_dir):
        tdir = telemetry_dir(run_dir)
        worker = HeartbeatWriter(tdir, role="worker")
        worker.beat(force=True)
        # a second process's heartbeat, forged with a different pid
        doc = json.loads(worker.path.read_text())
        doc["pid"], doc["role"] = 1, "main"
        (tdir / "heartbeat-1.json").write_text(json.dumps(doc))
        roles = [b["role"] for b in load_heartbeats(run_dir)]
        assert roles == ["main", "worker"]


class TestRunStatus:
    def test_fresh_run_dir(self, run_dir):
        _new_session(run_dir).close()
        status = run_status(run_dir)
        assert status["schema"] == STATUS_SCHEMA
        assert status["complete"] is False
        assert status["chunks_done"] == 0
        # fig13 has 4 x values; reps=4 / chunk_size=2 -> 2 chunks per x
        definition = get_figure("fig13")
        assert status["chunks_total"] == len(definition.x_values) * 2
        assert status["eta_s"] is None  # no walls yet

    def test_interrupted_run_counts_ledger(self, run_dir):
        session = _new_session(run_dir)
        values = [{"HDLTS": 1.0}, {"HDLTS": 2.0}]
        session.record_chunk("fig13", 0, 1.0, 0, 2, values, {}, 0.5)
        session.record_chunk("fig13", 0, 1.0, 2, 4, values, {}, 0.7)
        session.close()
        status = run_status(run_dir)
        assert status["chunks_done"] == 2
        assert status["complete"] is False
        assert status["chunk_wall_mean_s"] == pytest.approx(0.6)
        assert status["eta_s"] is not None and status["eta_s"] > 0
        (sweep,) = status["sweeps"]
        assert sweep["chunks_done"] == 2 and sweep["complete"] is False

    def test_completed_run(self, run_dir):
        session = _new_session(run_dir)
        definition = get_figure("fig13")
        values = [{"HDLTS": 1.0}, {"HDLTS": 2.0}]
        for i in range(len(definition.x_values)):
            for lo in (0, 2):
                session.record_chunk(
                    "fig13", i, definition.x_values[i], lo, lo + 2,
                    values, {}, 0.1,
                )
        session.close()
        status = run_status(run_dir)
        assert status["complete"] is True
        assert status["chunks_done"] == status["chunks_total"]
        assert status["eta_s"] is None
        assert status["stragglers"] == []
        assert status["throughput_chunks_per_s"] is None or (
            status["throughput_chunks_per_s"] > 0
        )

    def test_straggler_flagging(self, run_dir):
        session = _new_session(run_dir)
        session.record_chunk(
            "fig13", 0, 1.0, 0, 2, [{"HDLTS": 1.0}], {}, 0.5
        )
        session.close()
        tdir = telemetry_dir(run_dir)
        now = time.time()
        stale = {
            "schema": HEARTBEAT_SCHEMA, "pid": 41, "role": "worker",
            "rss_kb": 1, "cpu_user_s": 0.0, "cpu_sys_s": 0.0,
            "chunks_done": 1, "last_event_ts": None, "ts": now - 3600.0,
        }
        fresh = dict(stale, pid=42, ts=now)
        tdir.mkdir(parents=True)
        (tdir / "heartbeat-41.json").write_text(json.dumps(stale))
        (tdir / "heartbeat-42.json").write_text(json.dumps(fresh))
        status = run_status(run_dir, now=now)
        assert status["stragglers"] == [41]

    def test_agrees_with_real_run(self, run_dir):
        session = _new_session(run_dir, reps=2, chunk_size=1)
        definition = session.definitions[0]
        with session:
            run_sweep_parallel(
                definition, reps=2, seed=0, workers=1, chunk_size=1,
                session=session, start_method="serial",
            )
        status = run_status(run_dir)
        assert status["complete"] is True
        assert status["chunks_done"] == len(definition.x_values) * 2


class TestFormatTop:
    @pytest.fixture
    def status(self, run_dir):
        session = _new_session(run_dir)
        session.record_chunk(
            "fig13", 0, 1.0, 0, 2, [{"HDLTS": 1.0}], {}, 0.5
        )
        session.close()
        HeartbeatWriter(telemetry_dir(run_dir), role="main").beat(force=True)
        return run_status(run_dir)

    def test_frame_contents(self, status):
        frame = format_top(status)
        assert "repro top" in frame
        assert "[#" in frame  # progress bar
        assert "1/10" in frame
        assert "fig13" in frame
        assert "main" in frame
        assert "ETA" in frame

    def test_straggler_annotation(self, status):
        status["stragglers"] = [status["workers"][0]["pid"]]
        status["workers"][0]["role"] = "worker"
        assert "STRAGGLER" in format_top(status)

    def test_complete_frame(self, status):
        status["complete"] = True
        frame = format_top(status)
        assert "complete" in frame


class TestWatch:
    def test_once_prints_one_frame(self, run_dir, capsys):
        _new_session(run_dir).close()
        assert watch(run_dir, once=True) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "\x1b[2J" not in out

    def test_live_exits_on_complete(self, run_dir, capsys):
        session = _new_session(run_dir, reps=2, chunk_size=2)
        definition = session.definitions[0]
        values = [{"HDLTS": 1.0}, {"HDLTS": 2.0}]
        for i in range(len(definition.x_values)):
            session.record_chunk(
                "fig13", i, definition.x_values[i], 0, 2, values, {}, 0.1
            )
        session.close()
        assert watch(run_dir, interval_s=0.01) == 0

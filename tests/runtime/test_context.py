"""Unit tests for the frozen RunContext and its contextvar plumbing."""

import pickle

import pytest

from repro.runtime.context import (
    DEFAULT_CONTEXT,
    ENGINE_CHOICES,
    START_METHODS,
    RunContext,
    activate,
    current_context,
    resolve_engine,
)


class TestRunContext:
    def test_defaults(self):
        ctx = RunContext()
        assert ctx.seed == 0
        assert ctx.engine == "fast"
        assert ctx.compiled is True
        assert ctx.validate is False
        assert ctx.metrics is False
        assert ctx.events is None
        assert ctx.workers == 1
        assert ctx.chunk_size == 5
        assert ctx.start_method is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunContext().seed = 3

    def test_with_returns_new_instance(self):
        base = RunContext()
        derived = base.with_(compiled=False, seed=7)
        assert derived.compiled is False and derived.seed == 7
        assert base.compiled is True and base.seed == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="engine"):
            RunContext(engine="bogus")
        with pytest.raises(ValueError, match="workers"):
            RunContext(workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            RunContext(chunk_size=0)
        with pytest.raises(ValueError, match="start_method"):
            RunContext(start_method="thread")
        for method in START_METHODS:
            RunContext(start_method=method)

    def test_pickle_round_trip(self):
        ctx = RunContext(
            seed=11, engine="reference", compiled=False, validate=True,
            metrics=True, events="ev.jsonl", workers=4, chunk_size=2,
            start_method="spawn",
        )
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx

    def test_dict_round_trip(self):
        ctx = RunContext(seed=3, workers=2, start_method="fork")
        rebuilt = RunContext.from_dict(ctx.to_dict())
        assert rebuilt == ctx

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown RunContext fields"):
            RunContext.from_dict({"seed": 0, "turbo": True})


class TestActivation:
    def test_default_active(self):
        # the pytest --start-method option may adopt a start_method
        # override for the whole session; everything else is default
        assert current_context().with_(start_method=None) == DEFAULT_CONTEXT

    def test_activate_scopes_and_restores(self):
        before = current_context()
        ctx = RunContext(seed=5, compiled=False)
        with activate(ctx) as active:
            assert active is ctx
            assert current_context() is ctx
        assert current_context() == before

    def test_activation_nests(self):
        outer, inner = RunContext(seed=1), RunContext(seed=2)
        with activate(outer):
            with activate(inner):
                assert current_context().seed == 2
            assert current_context().seed == 1

    def test_activate_restores_on_error(self):
        before = current_context()
        with pytest.raises(RuntimeError):
            with activate(RunContext(seed=9)):
                raise RuntimeError("boom")
        assert current_context() == before


class TestResolveEngine:
    def test_none_defers_to_context(self):
        assert resolve_engine(None) == DEFAULT_CONTEXT.engine
        with activate(RunContext(engine="reference")):
            assert resolve_engine(None) == "reference"

    def test_explicit_wins_over_context(self):
        with activate(RunContext(engine="reference")):
            assert resolve_engine("fast") == "fast"

    def test_invalid_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            resolve_engine("bogus")
        assert set(ENGINE_CHOICES) == {"fast", "reference"}


class TestConsumers:
    """The legacy global toggles now read/write the context."""

    def test_compiled_enabled_follows_context(self):
        from repro.model.compiled import compiled_enabled

        assert compiled_enabled()
        with activate(current_context().with_(compiled=False)):
            assert not compiled_enabled()
        assert compiled_enabled()

    def test_use_compiled_shim_still_scopes(self):
        from repro.model.compiled import compiled_enabled, use_compiled

        with use_compiled(False):
            assert not compiled_enabled()
        assert compiled_enabled()

    def test_obs_enabled_follows_context(self):
        from repro import obs

        assert not obs.enabled()
        with activate(current_context().with_(metrics=True)):
            assert obs.enabled()
        assert not obs.enabled()

    def test_obs_enable_shim_overrides_context(self):
        from repro import obs

        obs.enable()
        try:
            assert obs.enabled()
        finally:
            obs.disable()
        assert not obs.enabled()

    def test_scheduler_engine_defaults_from_context(self):
        from repro.core.hdlts import HDLTS

        assert HDLTS().engine == "fast"
        with activate(current_context().with_(engine="reference")):
            assert HDLTS().engine == "reference"
            assert HDLTS(engine="fast").engine == "fast"

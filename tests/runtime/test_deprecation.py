"""The warn-once deprecation helper and the shims that use it.

``use_compiled()`` / ``obs.enable()`` sit on paths that sweeps may hit
thousands of times; each must emit its ``DeprecationWarning`` exactly
once per process.
"""

from __future__ import annotations

import warnings

import pytest

from repro.runtime import deprecation


@pytest.fixture(autouse=True)
def _rearm():
    """Each test sees a fresh warn-once registry (and restores nothing:
    the registry is an idempotent cache, not configuration)."""
    deprecation.reset()
    yield
    deprecation.reset()


class TestWarnOnce:
    def test_first_call_warns(self):
        with pytest.warns(DeprecationWarning, match="gone"):
            assert deprecation.warn_once("k", "gone")

    def test_second_call_is_silent(self):
        with pytest.warns(DeprecationWarning):
            deprecation.warn_once("k", "gone")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a repeat would raise
            assert not deprecation.warn_once("k", "gone")

    def test_keys_are_independent(self):
        with pytest.warns(DeprecationWarning):
            deprecation.warn_once("a", "gone")
        with pytest.warns(DeprecationWarning):
            deprecation.warn_once("b", "also gone")

    def test_reset_rearms(self):
        with pytest.warns(DeprecationWarning):
            deprecation.warn_once("k", "gone")
        deprecation.reset()
        with pytest.warns(DeprecationWarning):
            deprecation.warn_once("k", "gone")


class TestShimsWarnOnce:
    def test_use_compiled_warns_once_per_process(self):
        from repro.model.compiled import use_compiled

        with pytest.warns(DeprecationWarning, match="use_compiled"):
            with use_compiled(True):
                pass
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for _ in range(3):  # the hot-loop scenario: no spam
                with use_compiled(False):
                    pass

    def test_obs_enable_warns_once_per_process(self):
        from repro import obs

        try:
            with pytest.warns(DeprecationWarning, match="obs.enable"):
                obs.enable()
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                for _ in range(3):
                    obs.enable()
        finally:
            obs.disable()

"""Unit tests for the framed columnar store (`repro.io.columnar`).

The load-bearing contracts: append-only CRC-framed record batches,
reads that stop at the first torn/corrupt frame, and a resume path
(`ColumnarWriter.append`) that truncates the torn tail so a
killed-and-resumed store is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.columnar import (
    COLUMNAR_SCHEMA,
    ColumnarWriter,
    FRAME_MAGIC,
    MAGIC,
    have_arrow,
    iter_batches,
    read_header,
    record_dtype,
    records_as_matrix,
    scan_frames,
    write_table,
)

GROUPS = {"fig2": ["HDLTS", "HEFT"], "fig3": ["HDLTS", "HEFT", "PEFT"]}


def _records(group: str, seed: int, rows: int = 4) -> np.ndarray:
    dtype = record_dtype(GROUPS[group])
    records = np.empty(rows, dtype=dtype)
    rng = np.random.default_rng(seed)
    records_as_matrix(records)[:] = rng.random((rows, len(GROUPS[group])))
    return records


def _write_store(path, n_frames: int = 3) -> list:
    """A small two-group store; returns the (meta, records) written."""
    written = []
    with ColumnarWriter.create(path, GROUPS) as writer:
        for i in range(n_frames):
            group = "fig2" if i % 2 == 0 else "fig3"
            meta = {"group": group, "task": f"t{i}", "x_index": i}
            records = _records(group, seed=i)
            writer.write_batch(meta, records)
            written.append((meta, records))
    return written


# ----------------------------------------------------------------------
# roundtrip and validation
# ----------------------------------------------------------------------
def test_roundtrip(tmp_path):
    path = tmp_path / "store.colbin"
    written = _write_store(path, n_frames=5)

    header = read_header(path)
    assert header["schema"] == COLUMNAR_SCHEMA
    assert header["groups"] == GROUPS

    batches = list(iter_batches(path))
    assert len(batches) == 5
    for (meta, records), (want_meta, want_records) in zip(batches, written):
        assert meta["group"] == want_meta["group"]
        assert meta["task"] == want_meta["task"]
        assert meta["rows"] == len(want_records)
        np.testing.assert_array_equal(records, want_records)

    # group filter streams only that group's frames
    fig3 = list(iter_batches(path, group="fig3"))
    assert [m["task"] for m, _ in fig3] == ["t1", "t3"]


def test_create_refuses_clobber(tmp_path):
    path = tmp_path / "store.colbin"
    _write_store(path)
    with pytest.raises(FileExistsError):
        ColumnarWriter.create(path, GROUPS)


def test_write_batch_validates_group_and_dtype(tmp_path):
    with ColumnarWriter.create(tmp_path / "s.colbin", GROUPS) as writer:
        with pytest.raises(ValueError, match="unknown record group"):
            writer.write_batch({"group": "nope"}, _records("fig2", 0))
        with pytest.raises(ValueError, match="does not match group"):
            writer.write_batch({"group": "fig3"}, _records("fig2", 0))


def test_record_dtype_validation():
    with pytest.raises(ValueError, match="at least one column"):
        record_dtype([])
    with pytest.raises(ValueError, match="duplicate column"):
        record_dtype(["a", "a"])
    dtype = record_dtype(["a", "b"])
    assert dtype.itemsize == 16 and dtype.names == ("a", "b")


def test_rejects_foreign_files(tmp_path):
    not_ours = tmp_path / "other.bin"
    not_ours.write_bytes(b"PARQUET1" + b"\x00" * 64)
    with pytest.raises(ValueError, match="not a columnar store"):
        read_header(not_ours)

    # right magic, wrong schema tag
    bad_schema = tmp_path / "bad.colbin"
    blob = b'{"groups":{},"schema":"repro.other/9"}'
    bad_schema.write_bytes(
        MAGIC + len(blob).to_bytes(4, "little") + blob
    )
    with pytest.raises(ValueError, match="unsupported columnar schema"):
        read_header(bad_schema)


# ----------------------------------------------------------------------
# torn tails and corruption
# ----------------------------------------------------------------------
def test_torn_tail_at_every_cut_point(tmp_path):
    """Truncating anywhere inside the last frame loses exactly it."""
    path = tmp_path / "store.colbin"
    _write_store(path, n_frames=3)
    _, frames, valid_end = scan_frames(path)
    assert len(frames) == 3
    full = path.read_bytes()
    assert valid_end == len(full)

    last_frame_start = full.rfind(FRAME_MAGIC)
    # cut points: just after the magic, mid-head, mid-meta, one byte
    # short of complete
    for cut in (
        last_frame_start + len(FRAME_MAGIC),
        last_frame_start + len(FRAME_MAGIC) + 6,
        last_frame_start + len(FRAME_MAGIC) + 20,
        len(full) - 1,
    ):
        torn = tmp_path / f"torn-{cut}.colbin"
        torn.write_bytes(full[:cut])
        _, kept, end = scan_frames(torn)
        assert len(kept) == 2, cut
        assert end == last_frame_start, cut


def test_crc_corruption_stops_the_scan(tmp_path):
    path = tmp_path / "store.colbin"
    _write_store(path, n_frames=3)
    _, intact, _ = scan_frames(path)
    full = bytearray(path.read_bytes())
    # flip one payload byte of the middle frame: its CRC no longer
    # matches, so the scan must stop there (frames after an undetected
    # corruption can't be trusted -- offsets may be garbage)
    full[intact[1].payload_offset + 3] ^= 0xFF
    path.write_bytes(bytes(full))
    _, frames, end = scan_frames(path)
    assert len(frames) == 1
    assert frames[0].meta["task"] == "t0"
    # the valid region ends where the corrupt frame begins
    assert end == full.index(FRAME_MAGIC, intact[0].payload_offset)


# ----------------------------------------------------------------------
# append / resume
# ----------------------------------------------------------------------
def test_append_resume_is_byte_identical(tmp_path):
    """Kill mid-append, truncate, re-emit: the file bytes must match."""
    uninterrupted = tmp_path / "clean.colbin"
    _write_store(uninterrupted, n_frames=4)
    want = uninterrupted.read_bytes()

    crashed = tmp_path / "crashed.colbin"
    _write_store(crashed, n_frames=4)
    # tear the last frame as a kill -9 mid-write would
    crashed.write_bytes(want[: len(want) - 11])

    writer, done = ColumnarWriter.append(crashed)
    with writer:
        assert [f.meta["task"] for f in done] == ["t0", "t1", "t2"]
        # the torn tail is already gone; re-emit only the lost frame
        meta = {"group": "fig3", "task": "t3", "x_index": 3}
        writer.write_batch(meta, _records("fig3", seed=3))
    assert crashed.read_bytes() == want


def test_append_missing_file(tmp_path):
    path = tmp_path / "fresh.colbin"
    with pytest.raises(FileNotFoundError):
        ColumnarWriter.append(path)
    writer, done = ColumnarWriter.append(path, GROUPS)
    with writer:
        assert done == []
        writer.write_batch({"group": "fig2", "task": "t0"}, _records("fig2", 0))
    assert len(list(iter_batches(path))) == 1


def test_identical_writes_identical_bytes(tmp_path):
    """No timestamps or randomness land in the file -- determinism is
    what makes shard resume byte-identical."""
    a, b = tmp_path / "a.colbin", tmp_path / "b.colbin"
    _write_store(a)
    _write_store(b)
    assert a.read_bytes() == b.read_bytes()


# ----------------------------------------------------------------------
# merged-table export
# ----------------------------------------------------------------------
def test_write_table_npz_roundtrip(tmp_path):
    columns = {
        "x": np.array([1.0, 2.0, 3.0]),
        "mean": np.array([0.1, 0.2, 0.3]),
        "scheduler": np.array(["HDLTS", "HEFT", "PEFT"]),
    }
    out = write_table(tmp_path / "merged.npz", columns)
    assert out == tmp_path / "merged.npz"
    loaded = np.load(out, allow_pickle=False)
    np.testing.assert_array_equal(loaded["x"], columns["x"])
    np.testing.assert_array_equal(loaded["scheduler"], columns["scheduler"])

    # missing suffix: savez appends .npz; the returned path says so
    out2 = write_table(tmp_path / "bare", {"x": columns["x"]})
    assert out2.name == "bare.npz" and out2.exists()


def test_write_table_rejects_ragged_columns(tmp_path):
    with pytest.raises(ValueError, match="ragged"):
        write_table(
            tmp_path / "m.npz",
            {"a": np.zeros(3), "b": np.zeros(2)},
        )


@pytest.mark.skipif(have_arrow(), reason="pyarrow installed")
def test_write_table_parquet_needs_arrow(tmp_path):
    with pytest.raises(ValueError, match="pyarrow is not installed"):
        write_table(tmp_path / "m.parquet", {"a": np.zeros(2)})

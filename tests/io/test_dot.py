"""Unit tests for DOT export."""

from repro.core import HDLTS
from repro.io.dot import graph_to_dot, schedule_to_dot


def test_nodes_and_edges_present(fig1):
    dot = graph_to_dot(fig1)
    assert dot.startswith("digraph workflow {")
    assert dot.rstrip().endswith("}")
    for task in fig1.tasks():
        assert f"t{task} [" in dot
    assert "t0 -> t1" in dot


def test_costs_on_labels(fig1):
    dot = graph_to_dot(fig1)
    assert "[14, 16, 9]" in dot
    assert 'label="18"' in dot


def test_costs_can_be_hidden(fig1):
    dot = graph_to_dot(fig1, show_costs=False)
    assert "[14, 16, 9]" not in dot
    assert 'label="18"' not in dot


def test_schedule_coloring(fig1):
    schedule = HDLTS().run(fig1).schedule
    dot = schedule_to_dot(schedule)
    assert "fillcolor=\"#" in dot
    assert "tooltip=" in dot


def test_quotes_escaped():
    from repro.model.task_graph import TaskGraph

    graph = TaskGraph(1)
    graph.add_task([1], name='say "hi"')
    dot = graph_to_dot(graph)
    assert r"\"hi\"" in dot


def test_parses_with_networkx(fig1):
    """pydot isn't installed, so check structural line counts instead."""
    dot = graph_to_dot(fig1)
    node_lines = [l for l in dot.splitlines() if l.strip().startswith("t") and "->" not in l]
    edge_lines = [l for l in dot.splitlines() if "->" in l]
    assert len(node_lines) == fig1.n_tasks
    assert len(edge_lines) == fig1.n_edges


def test_palette_cycles_beyond_eight_cpus():
    from repro.model.task_graph import TaskGraph
    from repro.schedule.schedule import Schedule

    graph = TaskGraph(10)
    tasks = [graph.add_task([1.0] * 10) for _ in range(10)]
    schedule = Schedule(graph)
    for i, task in enumerate(tasks):
        schedule.place(task, i, 0.0)
    dot = schedule_to_dot(schedule)
    # CPUs 0 and 8 share a palette slot (8 colors cycled over 10 CPUs)
    assert dot.count("#88CCEE") >= 2

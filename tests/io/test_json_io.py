"""Unit tests for JSON serialization."""

import json

import numpy as np
import pytest

from repro.core import HDLTS
from repro.io.json_io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
    save_schedule,
    schedule_to_dict,
)


class TestGraphRoundTrip:
    def test_fig1_round_trip(self, fig1):
        restored = graph_from_dict(graph_to_dict(fig1))
        assert restored.n_tasks == fig1.n_tasks
        assert restored.n_procs == fig1.n_procs
        assert np.allclose(restored.cost_matrix(), fig1.cost_matrix())
        assert sorted(map(tuple, restored.edges())) == sorted(
            map(tuple, fig1.edges())
        )
        assert restored.name(0) == "T1"

    def test_round_trip_preserves_schedules(self, fig1):
        restored = graph_from_dict(graph_to_dict(fig1))
        assert HDLTS().run(restored).makespan == HDLTS().run(fig1).makespan

    def test_file_round_trip(self, fig1, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig1, path)
        restored = load_graph(path)
        assert np.allclose(restored.cost_matrix(), fig1.cost_matrix())

    def test_random_graph_round_trip(self):
        from tests.conftest import make_random_graph

        graph = make_random_graph(seed=3, v=50)
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.n_edges == graph.n_edges

    def test_document_is_valid_json(self, fig1, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig1, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-taskgraph"
        assert data["version"] == 1

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-taskgraph"):
            graph_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, fig1):
        data = graph_to_dict(fig1)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            graph_from_dict(data)


class TestScheduleExport:
    def test_records_cover_all_copies(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        data = schedule_to_dict(schedule)
        assert data["makespan"] == 73.0
        # 10 primaries + 2 entry duplicates
        assert len(data["records"]) == 12
        dups = [r for r in data["records"] if r["duplicate"]]
        assert len(dups) == 2 and all(r["name"] == "T1" for r in dups)

    def test_records_sorted_by_start(self, fig1):
        records = schedule_to_dict(HDLTS().run(fig1).schedule)["records"]
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)

    def test_save_schedule_file(self, fig1, tmp_path):
        path = tmp_path / "schedule.json"
        save_schedule(HDLTS().run(fig1).schedule, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-schedule"
        assert data["n_procs"] == 3

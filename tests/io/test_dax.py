"""Unit tests for the Pegasus DAX importer."""

import pytest

from repro.io.dax import load_dax, parse_dax
from repro.model.platform import Platform, compile_workflow

_DIAMOND_DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.6" name="diamond">
  <job id="ID0001" name="preprocess" runtime="10.0">
    <uses file="f.a" link="input" size="1000"/>
    <uses file="f.b1" link="output" size="2000"/>
    <uses file="f.b2" link="output" size="3000"/>
  </job>
  <job id="ID0002" name="findrange1" runtime="20.0">
    <uses file="f.b1" link="input" size="2000"/>
    <uses file="f.c1" link="output" size="500"/>
  </job>
  <job id="ID0003" name="findrange2" runtime="30.0">
    <uses file="f.b2" link="input" size="3000"/>
    <uses file="f.c2" link="output" size="700"/>
  </job>
  <job id="ID0004" name="analyze" runtime="5.0">
    <uses file="f.c1" link="input" size="500"/>
    <uses file="f.c2" link="input" size="700"/>
    <uses file="f.d" link="output" size="100"/>
  </job>
  <child ref="ID0002"><parent ref="ID0001"/></child>
  <child ref="ID0003"><parent ref="ID0001"/></child>
  <child ref="ID0004">
    <parent ref="ID0002"/>
    <parent ref="ID0003"/>
  </child>
</adag>
"""


class TestParse:
    def test_jobs_and_names(self):
        workflow = parse_dax(_DIAMOND_DAX)
        assert workflow.n_tasks == 4
        assert workflow.names == [
            "preprocess",
            "findrange1",
            "findrange2",
            "analyze",
        ]
        assert workflow.instructions == [10.0, 20.0, 30.0, 5.0]

    def test_edges_and_volumes(self):
        workflow = parse_dax(_DIAMOND_DAX)
        assert workflow.data[(0, 1)] == 2000.0  # f.b1
        assert workflow.data[(0, 2)] == 3000.0  # f.b2
        assert workflow.data[(1, 3)] == 500.0  # f.c1
        assert workflow.data[(2, 3)] == 700.0  # f.c2
        assert len(workflow.data) == 4

    def test_namespaced_and_plain_xml_both_parse(self):
        plain = _DIAMOND_DAX.replace(
            ' xmlns="http://pegasus.isi.edu/schema/DAX"', ""
        )
        assert parse_dax(plain).n_tasks == 4

    def test_invalid_xml_rejected(self):
        with pytest.raises(ValueError, match="not valid DAX"):
            parse_dax("this is not xml")

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError, match="adag"):
            parse_dax("<workflow/>")

    def test_unknown_refs_rejected(self):
        bad = _DIAMOND_DAX.replace('ref="ID0002"', 'ref="NOPE"', 1)
        with pytest.raises(ValueError, match="unknown job"):
            parse_dax(bad)

    def test_duplicate_job_id_rejected(self):
        bad = _DIAMOND_DAX.replace('id="ID0002"', 'id="ID0001"')
        with pytest.raises(ValueError, match="duplicate job id"):
            parse_dax(bad)

    def test_edge_without_shared_files_has_zero_volume(self):
        dax = """<adag name="x">
          <job id="A" runtime="1"/>
          <job id="B" runtime="1"/>
          <child ref="B"><parent ref="A"/></child>
        </adag>"""
        workflow = parse_dax(dax)
        assert workflow.data[(0, 1)] == 0.0


class TestEndToEnd:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "diamond.dax"
        path.write_text(_DIAMOND_DAX)
        workflow = load_dax(path)
        assert workflow.n_tasks == 4

    def test_compile_and_schedule(self):
        from repro.core import HDLTS
        from repro.schedule.validation import validate_schedule

        workflow = parse_dax(_DIAMOND_DAX)
        platform = Platform([1.0, 2.0], bandwidth=1000.0)
        graph = compile_workflow(workflow, platform)
        # runtime / frequency: preprocess on the 2 GHz CPU takes 5
        assert graph.cost(0, 1) == pytest.approx(5.0)
        # 2000 bytes over 1000 B/s links -> 2.0 time units
        assert graph.comm_cost(0, 1) == pytest.approx(2.0)
        result = HDLTS().run(graph)
        validate_schedule(graph, result.schedule)

"""Cross-cutting edge cases and regression tests.

Boundary behaviours that the per-module suites do not pin down:
degenerate graphs, boundary parameters, and regressions for bugs that
hypothesis found during development (each noted inline).
"""

import numpy as np
import pytest

from repro.baselines.registry import SCHEDULER_FACTORIES, make_scheduler
from repro.core import HDLTS
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.schedule.simulator import ScheduleSimulator
from repro.schedule.timeline import ProcessorTimeline
from repro.schedule.validation import validate_schedule


class TestZeroCostTasks:
    """Regression class: zero-duration (pseudo) tasks once broke the
    timeline's fits/avail logic and the simulator's replay order."""

    def test_zero_cost_chain_schedules_everywhere(self):
        graph = TaskGraph(2)
        prev = graph.add_task([0, 0])
        for _ in range(4):
            task = graph.add_task([0, 0])
            graph.add_edge(prev, task, 0.0)
            prev = task
        for name in ("HDLTS", "HEFT", "PETS", "PEFT", "SDBATS"):
            result = make_scheduler(name).run(graph)
            assert result.makespan == 0.0
            validate_schedule(graph, result.schedule)

    def test_avail_not_fooled_by_boundary_pseudo_slot(self):
        """Regression: avail must be the max end, not the last slot's
        end (a zero slot at [0, 0) can sort after [0, 10))."""
        timeline = ProcessorTimeline(0)
        timeline.reserve(1, 0.0, 10.0)
        timeline.reserve(2, 0.0, 0.0)
        assert timeline.avail == 10.0

    def test_simulator_runs_zero_slot_before_real_same_start(self):
        """Regression: replay order must be (start, end), else a zero
        task at t sharing a start with a real task replays late."""
        graph = TaskGraph(1)
        a = graph.add_task([0])
        b = graph.add_task([5])
        c = graph.add_task([1])
        graph.add_edge(a, c, 0.0)
        schedule = Schedule(graph)
        schedule.place(a, 0, 0.0)  # [0, 0)
        schedule.place(b, 0, 0.0)  # [0, 5)
        schedule.place(c, 0, 5.0)
        sim = ScheduleSimulator(graph).run(schedule)
        assert sim.makespan == pytest.approx(schedule.makespan)

    def test_mixed_zero_and_real_costs(self):
        graph = TaskGraph(3)
        a = graph.add_task([0, 0, 0])
        b = graph.add_task([7, 3, 9])
        c = graph.add_task([0, 0, 0])
        graph.add_edge(a, b, 4.0)
        graph.add_edge(b, c, 4.0)
        result = HDLTS().run(graph)
        validate_schedule(graph, result.schedule)
        assert result.makespan == pytest.approx(3.0)


class TestExtremeShapes:
    def test_star_graph_wide_fanout(self):
        """One entry fanning to 40 leaves: ITQ holds 40 tasks at once."""
        graph = TaskGraph(4)
        hub = graph.add_task([5, 6, 7, 8])
        for i in range(40):
            leaf = graph.add_task([1 + i % 3] * 4)
            graph.add_edge(hub, leaf, 2.0)
        for name in ("HDLTS", "HEFT", "DLS"):
            result = make_scheduler(name).run(graph)
            validate_schedule(graph, result.schedule)

    def test_join_graph_wide_fanin(self):
        graph = TaskGraph(3)
        sink_costs = [4, 4, 4]
        sources = [graph.add_task([2, 3, 4]) for _ in range(30)]
        sink = graph.add_task(sink_costs)
        for source in sources:
            graph.add_edge(source, sink, 1.5)
        result = HDLTS().run(graph)  # normalized internally (multi-entry)
        assert result.schedule.is_complete()

    def test_long_chain_200(self):
        graph = TaskGraph(2)
        prev = graph.add_task([1, 2])
        for i in range(199):
            task = graph.add_task([1 + (i % 4), 2])
            graph.add_edge(prev, task, 0.5)
            prev = task
        result = HDLTS().run(graph)
        validate_schedule(graph, result.schedule)
        # a chain cannot run faster than the per-task minima in sequence
        assert result.makespan >= sum(
            graph.cost_row(t).min() for t in graph.tasks()
        )

    def test_identical_costs_everywhere(self):
        """Fully degenerate instance: all ties, every rule must still
        produce a deterministic feasible schedule."""
        graph = TaskGraph(3)
        tasks = [graph.add_task([5, 5, 5]) for _ in range(6)]
        for a, b in zip(tasks, tasks[1:]):
            graph.add_edge(a, b, 5.0)
        makespans = set()
        for _ in range(3):
            makespans.add(HDLTS().run(graph).makespan)
        assert len(makespans) == 1


class TestHugeCommunication:
    def test_ccr_dominated_graph_serializes(self):
        """With comm >> comp, schedulers should co-locate the chain."""
        graph = TaskGraph(3)
        prev = graph.add_task([1, 1.5, 2])
        for _ in range(10):
            task = graph.add_task([1, 1.5, 2])
            graph.add_edge(prev, task, 1000.0)
            prev = task
        schedule = HDLTS().run(graph).schedule
        validate_schedule(graph, schedule)
        # never worth paying 1000 to move a 1-unit task
        procs = {schedule.proc_of(t) for t in graph.tasks()}
        assert len(procs) == 1
        assert schedule.makespan < 100

    def test_every_scheduler_colocates_expensive_chain(self):
        graph = TaskGraph(2)
        a = graph.add_task([3, 4])
        b = graph.add_task([3, 4])
        graph.add_edge(a, b, 10_000.0)
        for name in SCHEDULER_FACTORIES:
            schedule = SCHEDULER_FACTORIES[name]().run(graph).schedule
            arrival = schedule.arrival_time(a, b, schedule.proc_of(b))
            assert arrival < 10_000, name


class TestFloatBoundaries:
    def test_tiny_durations_do_not_break_insertion(self):
        """Regression: eps-scale costs once produced unreservable
        earliest_start answers in insertion mode."""
        graph = TaskGraph(2)
        a = graph.add_task([1e-9, 1.0])
        b = graph.add_task([1.0, 1e-9])
        c = graph.add_task([1e-9, 1e-9])
        graph.add_edge(a, b, 1e-9)
        graph.add_edge(a, c, 0.0)
        for name in ("HEFT", "PEFT", "PETS"):
            result = make_scheduler(name).run(graph)
            assert result.schedule.is_complete(), name

    def test_large_magnitudes(self):
        graph = TaskGraph(2)
        a = graph.add_task([1e12, 2e12])
        b = graph.add_task([3e12, 1e12])
        graph.add_edge(a, b, 5e11)
        result = HDLTS().run(graph)
        validate_schedule(graph, result.schedule)
        assert np.isfinite(result.makespan)


class TestSchedulerDeterminism:
    @pytest.mark.parametrize(
        "name", ["HDLTS", "HEFT", "CPOP", "PETS", "PEFT", "SDBATS", "DLS", "LC"]
    )
    def test_rerun_is_identical(self, name, fig1):
        a = make_scheduler(name).run(fig1).makespan
        b = make_scheduler(name).run(fig1).makespan
        assert a == b

"""Unit tests for the metrics registry and snapshot merging."""

import math

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    format_metrics,
    get_metrics,
    merge_snapshots,
    scoped,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestPrimitives:
    def test_counter(self, registry):
        registry.counter("a/b").inc()
        registry.counter("a/b").inc(4)
        assert registry.counter("a/b").value == 5

    def test_gauge(self, registry):
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5

    def test_timer_observe(self, registry):
        timer = registry.timer("t")
        timer.observe(0.5)
        timer.observe(1.5)
        assert timer.count == 2
        assert timer.total == 2.0
        assert timer.min == 0.5 and timer.max == 1.5
        assert timer.mean == 1.0

    def test_timer_context(self, registry):
        with registry.timer("t").time():
            pass
        assert registry.timer("t").count == 1
        assert registry.timer("t").total >= 0.0

    def test_histogram_buckets(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.buckets == [1, 1, 1]
        assert hist.count == 3
        assert hist.mean == pytest.approx(55.5 / 3)
        assert hist.min == 0.5 and hist.max == 50.0

    def test_histogram_needs_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_registry_truthiness(self, registry):
        assert not registry
        registry.counter("x").inc()
        assert registry


class TestSnapshotAndMerge:
    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.timer("t").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["timers"]["t"]["count"] == 1
        assert set(snap) == {"counters", "gauges", "timers", "histograms"}

    def test_merge_counters_add_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        b.counter("d").inc(1)
        a.merge(b.snapshot())
        assert a.counter("c").value == 7
        assert a.counter("d").value == 1

    def test_merge_timers_combine_extrema(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.timer("t").observe(1.0)
        b.timer("t").observe(3.0)
        a.merge(b.snapshot())
        timer = a.timer("t")
        assert timer.count == 2 and timer.total == 4.0
        assert timer.min == 1.0 and timer.max == 3.0

    def test_merge_gauges_keep_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(2.0)
        b.gauge("g").set(5.0)
        a.merge(b.snapshot())
        assert a.gauge("g").value == 5.0

    def test_merge_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.0)
        a.merge(b.snapshot())
        hist = a.histogram("h", bounds=(1.0,))
        assert hist.buckets == [1, 1] and hist.count == 2

    def test_merge_histogram_bounds_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_snapshots_is_associative_for_counters(self):
        regs = [MetricsRegistry() for _ in range(3)]
        for i, reg in enumerate(regs):
            reg.counter("c").inc(i + 1)
        snaps = [r.snapshot() for r in regs]
        left = merge_snapshots(merge_snapshots(snaps[0], snaps[1]), snaps[2])
        right = merge_snapshots(snaps[0], merge_snapshots(snaps[1], snaps[2]))
        assert left["counters"] == right["counters"] == {"c": 6}

    def test_snapshot_round_trips_through_fresh_registry(self, registry):
        registry.counter("c").inc(2)
        registry.timer("t").observe(0.25)
        registry.histogram("h").observe(1e-3)
        fresh = MetricsRegistry()
        fresh.merge(registry.snapshot())
        assert fresh.snapshot() == registry.snapshot()

    def test_empty_timer_snapshot_is_finite(self, registry):
        registry.timer("t")
        snap = registry.snapshot()["timers"]["t"]
        assert math.isfinite(snap["min"]) and math.isfinite(snap["max"])

    def test_empty_timer_merges_as_identity(self):
        # a worker that touched a timer without observing must not
        # disturb the parent's extrema or counts
        a, b = MetricsRegistry(), MetricsRegistry()
        a.timer("t").observe(2.0)
        b.timer("t")  # created, never observed
        a.merge(b.snapshot())
        timer = a.timer("t")
        assert timer.count == 1 and timer.total == 2.0
        assert timer.min == 2.0 and timer.max == 2.0

    def test_empty_timer_into_empty_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.timer("t")
        a.merge(b.snapshot())
        assert a.timer("t").count == 0
        snap = a.snapshot()["timers"]["t"]
        assert math.isfinite(snap["min"]) and math.isfinite(snap["max"])

    def test_single_observation_histogram_round_trips(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("h", bounds=(1.0, 10.0)).observe(5.0)
        a.merge(b.snapshot())
        hist = a.histogram("h", bounds=(1.0, 10.0))
        assert hist.count == 1
        assert hist.buckets == [0, 1, 0]
        assert hist.min == 5.0 and hist.max == 5.0
        assert hist.mean == 5.0

    def test_merge_into_non_empty_registry_preserves_both(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(1)
        parent.timer("t").observe(1.0)
        parent.gauge("g").set(1.0)
        worker.counter("c").inc(2)
        worker.counter("new").inc(7)
        worker.timer("t").observe(3.0)
        worker.histogram("h").observe(0.5)
        parent.merge(worker.snapshot())
        assert parent.counter("c").value == 3
        assert parent.counter("new").value == 7
        assert parent.timer("t").count == 2
        assert parent.gauge("g").value == 1.0
        assert parent.histogram("h").count == 1

    def test_merge_commutes_across_worker_orderings(self):
        # the parallel collector folds worker snapshots in submission
        # order; any pool scheduling must produce the same totals
        workers = []
        for i in range(4):
            reg = MetricsRegistry()
            reg.counter("sweep/replications").inc(i + 1)
            # binary-exact observations: summation commutes bit-for-bit
            reg.timer("sweep/replication").observe(0.25 * (i + 1))
            reg.histogram("h").observe(2.0 ** i)
            workers.append(reg.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in workers:
            forward.merge(snap)
        for snap in reversed(workers):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()


class TestScopedRegistry:
    def test_scoped_registry_becomes_current(self):
        outer = get_metrics()
        with scoped() as inner:
            assert get_metrics() is inner
            assert inner is not outer
        assert get_metrics() is outer

    def test_scoped_merges_up_by_default(self):
        with scoped(merge_up=False) as outer_scope:
            with scoped() as inner:
                inner.counter("c").inc(3)
            assert outer_scope.counter("c").value == 3

    def test_scoped_no_merge_up(self):
        with scoped(merge_up=False) as outer_scope:
            with scoped(merge_up=False) as inner:
                inner.counter("c").inc(3)
            assert outer_scope.counter("c").value == 0


def test_format_metrics_renders_every_section():
    registry = MetricsRegistry()
    registry.counter("HDLTS/decisions").inc(10)
    registry.gauge("sweep/chunk_imbalance").set(1.2)
    registry.timer("HDLTS/eft_vector").observe(0.01)
    registry.histogram("sweep/replication_s").observe(0.5)
    text = format_metrics(registry.snapshot())
    for token in ("counters:", "gauges:", "timers:", "histograms:",
                  "HDLTS/decisions", "sweep/chunk_imbalance"):
        assert token in text


def test_format_metrics_empty():
    assert "no metrics" in format_metrics(MetricsRegistry().snapshot())

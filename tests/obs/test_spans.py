"""Unit tests for hierarchical span tracing (repro.obs.spans)."""

import os

import pytest

from repro import obs
from repro.core import HDLTS
from repro.obs import spans
from repro.runtime.context import DEFAULT_CONTEXT, activate


@pytest.fixture
def recorder():
    rec = obs.SpanRecorder()
    unsubscribe = obs.subscribe(rec, topics=[obs.SPAN_TOPIC])
    yield rec
    unsubscribe()


class TestQuietPath:
    def test_span_off_returns_shared_noop(self, recorder):
        handle = obs.span("sweep.run", figure="fig2")
        assert handle is spans.NOOP_SPAN
        with handle as sp:
            sp.set(anything="ignored")
        assert recorder.records == []

    def test_tracing_defaults_off(self):
        assert obs.tracing() is False

    def test_noop_span_is_reentrant(self):
        with spans.NOOP_SPAN, spans.NOOP_SPAN:
            pass


class TestTracingScope:
    def test_scope_turns_tracing_on_and_restores(self):
        with obs.tracing_scope(True):
            assert obs.tracing() is True
        assert obs.tracing() is False

    def test_context_trace_field_enables_tracing(self):
        with activate(DEFAULT_CONTEXT.with_(trace=True)):
            assert obs.tracing() is True
        assert obs.tracing() is False

    def test_explicit_override_beats_context(self):
        with activate(DEFAULT_CONTEXT.with_(trace=True)):
            with obs.tracing_scope(False):
                assert obs.tracing() is False


class TestSpanRecords:
    def test_record_shape(self, recorder):
        with obs.tracing_scope(True):
            with obs.span("scheduler.run", name="HDLTS"):
                pass
        (record,) = recorder.records
        assert record["event"] == "span.end"
        assert record["kind"] == "scheduler.run"
        assert record["name"] == "HDLTS"
        assert record["pid"] == os.getpid()
        assert record["span_id"] > 0
        assert record["parent_id"] == 0
        assert record["dur_s"] >= 0.0
        assert record["wall0"] > 0.0

    def test_nesting_parents(self, recorder):
        with obs.tracing_scope(True):
            with obs.span("sweep.run"):
                with obs.span("sweep.point"):
                    pass
                with obs.span("sweep.point"):
                    pass
        # children close before the parent
        inner_a, inner_b, outer = recorder.records
        assert outer["kind"] == "sweep.run"
        assert inner_a["parent_id"] == outer["span_id"]
        assert inner_b["parent_id"] == outer["span_id"]
        assert inner_a["span_id"] != inner_b["span_id"]

    def test_set_attaches_attributes(self, recorder):
        with obs.tracing_scope(True):
            with obs.span("scheduler.run") as sp:
                sp.set(makespan=73.0, n_tasks=10)
        (record,) = recorder.records
        assert record["makespan"] == 73.0 and record["n_tasks"] == 10

    def test_exception_recorded_and_propagates(self, recorder):
        with obs.tracing_scope(True):
            with pytest.raises(RuntimeError):
                with obs.span("sweep.chunk"):
                    raise RuntimeError("boom")
        (record,) = recorder.records
        assert record["error"] == "RuntimeError"

    def test_quiet_bus_emits_nothing(self):
        # tracing on, but nobody subscribed: the span closes silently
        with obs.tracing_scope(True):
            with obs.span("sweep.run"):
                pass


class TestPhaseBridge:
    def test_phases_do_not_span_by_default(self, recorder):
        with obs.tracing_scope(True):
            with obs.phase("HDLTS/commit"):
                pass
        assert recorder.records == []

    def test_phase_spans_scope_bridges_phases(self, recorder):
        with obs.tracing_scope(True), obs.phase_spans_scope(True):
            with obs.phase("eft_vector"):
                pass
        (record,) = recorder.records
        assert record["kind"] == "phase"
        assert record["name"] == "eft_vector"

    def test_phase_spans_require_tracing(self, recorder):
        with obs.phase_spans_scope(True):
            with obs.phase("eft_vector"):
                pass
        assert recorder.records == []

    def test_tracing_alone_records_no_timers(self, recorder):
        # the bridge must not turn metrics recording on as a side effect
        with obs.scoped(merge_up=False) as registry:
            with obs.tracing_scope(True), obs.phase_spans_scope(True):
                with obs.phase("eft_vector"):
                    pass
        assert not registry
        assert len(recorder.records) == 1


class TestInstrumentedCode:
    def test_scheduler_run_emits_span(self, recorder, fig1):
        with obs.tracing_scope(True):
            result = HDLTS().run(fig1)
        kinds = [r["kind"] for r in recorder.records]
        assert "scheduler.run" in kinds
        record = next(r for r in recorder.records if r["kind"] == "scheduler.run")
        assert record["name"] == "HDLTS"
        assert record["makespan"] == result.makespan
        assert record["n_tasks"] == fig1.n_tasks

    def test_sweep_hierarchy(self, recorder):
        from repro.experiments import get_figure, run_sweep

        with obs.tracing_scope(True):
            run_sweep(get_figure("fig13"), reps=1)
        by_kind = {}
        for record in recorder.records:
            by_kind.setdefault(record["kind"], []).append(record)
        assert set(by_kind) >= {
            "sweep.run", "sweep.point", "sweep.replication", "scheduler.run"
        }
        run_id = by_kind["sweep.run"][0]["span_id"]
        assert all(p["parent_id"] == run_id for p in by_kind["sweep.point"])
        point_ids = {p["span_id"] for p in by_kind["sweep.point"]}
        assert all(
            r["parent_id"] in point_ids for r in by_kind["sweep.replication"]
        )
        rep_ids = {r["span_id"] for r in by_kind["sweep.replication"]}
        assert all(
            s["parent_id"] in rep_ids for s in by_kind["scheduler.run"]
        )

    def test_tracing_off_is_bit_identical(self, fig1):
        baseline = HDLTS().run(fig1).makespan
        with obs.tracing_scope(True):
            traced = HDLTS().run(fig1).makespan
        assert traced == baseline


class TestSpanRecorder:
    def test_len_and_records(self, recorder):
        assert len(recorder) == 0
        with obs.tracing_scope(True):
            with obs.span("sweep.chunk"):
                pass
        assert len(recorder) == 1

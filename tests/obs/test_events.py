"""Unit tests for the event bus and the JSONL sink."""

import json

import pytest

from repro.obs.events import Event, EventBus, JsonlSink, get_bus


@pytest.fixture
def bus():
    return EventBus()


class TestEventBus:
    def test_inactive_without_subscribers(self, bus):
        assert not bus.active

    def test_emit_without_subscribers_is_noop(self, bus):
        bus.emit("scheduler.decision", step=1)  # must not raise

    def test_subscriber_receives_events(self, bus):
        seen = []
        bus.subscribe(seen.append)
        bus.emit("scheduler.decision", step=1, task=3)
        assert len(seen) == 1
        assert seen[0].name == "scheduler.decision"
        assert seen[0].payload == {"step": 1, "task": 3}
        assert seen[0].ts > 0

    def test_unsubscribe(self, bus):
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit("a", x=1)
        unsubscribe()
        bus.emit("a", x=2)
        assert len(seen) == 1
        unsubscribe()  # idempotent

    def test_topic_exact_match(self, bus):
        seen = []
        bus.subscribe(seen.append, topics=("scheduler.decision",))
        bus.emit("scheduler.decision", step=1)
        bus.emit("scheduler.duplication", proc=0)
        assert [e.name for e in seen] == ["scheduler.decision"]

    def test_topic_family_prefix(self, bus):
        seen = []
        bus.subscribe(seen.append, topics=("scheduler.",))
        bus.emit("scheduler.decision", step=1)
        bus.emit("scheduler.duplication", proc=0)
        bus.emit("sim.task_finish", task=0)
        assert [e.name for e in seen] == [
            "scheduler.decision",
            "scheduler.duplication",
        ]

    def test_topic_wildcard(self, bus):
        seen = []
        bus.subscribe(seen.append, topics=("*",))
        bus.emit("anything.at.all")
        assert len(seen) == 1

    def test_multiple_subscribers_all_receive(self, bus):
        a, b = [], []
        bus.subscribe(a.append)
        bus.subscribe(b.append, topics=("x",))
        bus.emit("x", v=1)
        assert len(a) == 1 and len(b) == 1

    def test_clear(self, bus):
        seen = []
        bus.subscribe(seen.append)
        bus.clear()
        assert not bus.active
        bus.emit("x")
        assert not seen

    def test_event_to_dict_hoists_payload(self):
        event = Event("sweep.point", {"x": 0.5, "figure": "fig2"}, ts=1.0)
        assert event.to_dict() == {
            "event": "sweep.point",
            "ts": 1.0,
            "x": 0.5,
            "figure": "fig2",
        }

    def test_global_bus_is_singleton(self):
        assert get_bus() is get_bus()


class TestJsonlSink:
    def test_round_trips_through_json_loads(self, bus, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            bus.subscribe(sink)
            bus.emit("scheduler.decision", step=1, eft=(14.0, 16.0, 9.0))
            bus.emit("scheduler.duplication", proc=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "scheduler.decision"
        assert first["eft"] == [14.0, 16.0, 9.0]
        assert sink.n_written == 2

    def test_serializes_numpy_scalars(self, bus, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            bus.subscribe(sink)
            bus.emit("x", proc=np.int64(3), eft=np.float64(1.5))
        record = json.loads(path.read_text())
        assert record["proc"] == 3 and record["eft"] == 1.5

    def test_ignores_events_after_close(self, bus, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        bus.subscribe(sink)
        sink.close()
        bus.emit("x")  # must not raise on a closed file
        assert path.read_text() == ""

"""Unit tests for the profiling contexts and the enable switch."""

import pytest

from repro import obs
from repro.obs import profile as prof
from repro.obs.metrics import scoped


@pytest.fixture(autouse=True)
def _clean_switch():
    """Every test starts and ends with profiling disabled."""
    prof.disable()
    yield
    prof.disable()


class TestSwitch:
    def test_disabled_by_default(self):
        assert not prof.enabled()

    def test_enable_disable(self):
        prof.enable()
        assert prof.enabled()
        prof.disable()
        assert not prof.enabled()

    def test_enabled_scope_restores(self):
        with prof.enabled_scope():
            assert prof.enabled()
        assert not prof.enabled()

    def test_enabled_scope_nested_restore(self):
        prof.enable()
        with prof.enabled_scope(False):
            assert not prof.enabled()
        assert prof.enabled()


class TestPhase:
    def test_disabled_phase_is_shared_noop(self):
        assert prof.phase("a") is prof.phase("b")

    def test_enabled_phase_records_timer(self):
        prof.enable()
        with scoped(merge_up=False) as registry:
            with prof.phase("outer"):
                pass
        assert registry.timer("outer").count == 1

    def test_nested_phases_join_keys(self):
        prof.enable()
        with scoped(merge_up=False) as registry:
            with prof.phase("HDLTS"):
                with prof.phase("eft_vector"):
                    pass
                with prof.phase("eft_vector"):
                    pass
        snap = registry.snapshot()["timers"]
        assert snap["HDLTS"]["count"] == 1
        assert snap["HDLTS/eft_vector"]["count"] == 2

    def test_current_scope(self):
        assert prof.current_scope() is None
        prof.enable()
        with prof.phase("HDLTS"):
            assert prof.current_scope() == "HDLTS"
        assert prof.current_scope() is None


class TestCounters:
    def test_count_noop_when_disabled(self):
        with scoped(merge_up=False) as registry:
            prof.count("x")
        assert not registry

    def test_count_when_enabled(self):
        prof.enable()
        with scoped(merge_up=False) as registry:
            prof.count("x", 3)
        assert registry.counter("x").value == 3

    def test_scoped_count_prefixes_phase_root(self):
        prof.enable()
        with scoped(merge_up=False) as registry:
            with prof.phase("HEFT"):
                prof.scoped_count("eft_evaluations", 4)
            prof.scoped_count("bare", 1)
        snap = registry.snapshot()["counters"]
        assert snap == {"HEFT/eft_evaluations": 4, "bare": 1}


class TestInstrumented:
    def test_decorator_times_calls(self):
        @prof.instrumented("my_phase")
        def work(x):
            return x * 2

        prof.enable()
        with scoped(merge_up=False) as registry:
            assert work(2) == 4
            assert work(3) == 6
        assert registry.timer("my_phase").count == 2

    def test_decorator_free_when_disabled(self):
        calls = []

        @prof.instrumented()
        def work():
            calls.append(1)

        with scoped(merge_up=False) as registry:
            work()
        assert calls == [1]
        assert not registry

    def test_decorator_default_name(self):
        @prof.instrumented()
        def named_fn():
            pass

        prof.enable()
        with scoped(merge_up=False) as registry:
            named_fn()
        (key,) = registry.snapshot()["timers"].keys()
        assert "named_fn" in key


def test_obs_package_reexports():
    for attr in ("phase", "enable", "get_bus", "get_metrics", "session",
                 "JsonlSink", "MetricsRegistry", "format_metrics"):
        assert hasattr(obs, attr)


def test_session_collects_events_and_metrics(tmp_path):
    import json

    path = tmp_path / "events.jsonl"
    with obs.session(events_path=str(path), metrics=True) as sess:
        obs.emit("sweep.point", x=1)
        obs.count("sweep/replications", 2)
    assert sess.n_events == 1
    assert json.loads(path.read_text())["event"] == "sweep.point"
    assert sess.snapshot["counters"]["sweep/replications"] == 2
    assert not obs.enabled()
    assert not obs.get_bus().active

"""Regression guard: disabled observability must cost (almost) nothing.

The instrumented hot paths -- EFT loops, duplication checks, the
simulator commit loop -- run inside every test and every benchmark, so
the disabled state must add no events, no metric records and no per-call
allocations (the no-op phase is a shared singleton).
"""

import pytest

from repro import obs
from repro.core import HDLTS


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Run each test with profiling off and no bus subscribers."""
    assert not obs.enabled(), "a previous test leaked the enabled flag"
    with obs.scoped(merge_up=False) as registry:
        yield registry


def test_hdlts_results_unchanged_with_obs_disabled(fig1):
    result = HDLTS().run(fig1)
    assert result.makespan == 73.0


def test_disabled_phase_is_a_shared_singleton():
    assert obs.phase("eft_vector") is obs.phase("anything_else")


def test_disabled_phase_allocates_nothing_per_call():
    import sys

    first = obs.phase("x")
    assert sys.getrefcount(first) > 2  # module-held singleton, not fresh


def test_disabled_run_records_no_metrics(fig1, _pristine_obs):
    HDLTS().run(fig1)
    snapshot = _pristine_obs.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["timers"] == {}


def test_quiet_bus_emits_no_events(fig1):
    bus = obs.get_bus()
    assert not bus.active
    received = []
    # emit on a subscriber-less bus must be a pure no-op
    bus.emit("scheduler.decision", step=1)
    assert received == []
    # and instrumented code must not have left a subscriber behind
    HDLTS(record_trace=True).run(fig1)
    assert not bus.active


def test_record_trace_still_works_without_obs(fig1):
    """The Table I trace rides the bus yet needs no explicit session."""
    result = HDLTS(record_trace=True).run(fig1)
    assert len(result.trace) == 10
    assert result.trace[-1].finish == 73.0


def test_enabled_run_does_record(fig1, _pristine_obs):
    with obs.enabled_scope(True):
        HDLTS().run(fig1)
    snapshot = _pristine_obs.snapshot()
    assert snapshot["counters"]["HDLTS/decisions"] == 10
    assert snapshot["counters"]["HDLTS/eft_evaluations"] == 72
    assert snapshot["timers"]["HDLTS"]["count"] == 1

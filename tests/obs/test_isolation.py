"""Subscriber-exception isolation and the pluggable bus backend.

A raising subscriber must not corrupt the publishing run or wedge the
other subscribers: the event still reaches everyone else, the failure
is recorded, and the offender warns exactly once per process.
"""

from __future__ import annotations

import warnings

import pytest

from repro.obs.events import EventBus


@pytest.fixture
def bus():
    return EventBus()


def _raiser(exc=ValueError("subscriber boom")):
    def subscriber(event):
        raise exc

    return subscriber


class TestSubscriberIsolation:
    def test_raising_subscriber_does_not_stop_delivery(self, bus):
        before, after = [], []
        bus.subscribe(before.append)
        bus.subscribe(_raiser())
        bus.subscribe(after.append)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            bus.emit("sweep.chunk", figure="fig2")
        assert len(before) == len(after) == 1

    def test_raising_subscriber_does_not_corrupt_publisher(self, bus):
        bus.subscribe(_raiser())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            bus.emit("sweep.chunk", figure="fig2")  # must not raise

    def test_error_recorded_with_offender(self, bus):
        exc = ValueError("subscriber boom")
        bus.subscribe(_raiser(exc))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            bus.emit("a", x=1)
        ((who, err),) = bus.errors
        assert err is exc

    def test_warns_once_per_offender(self, bus):
        bus.subscribe(_raiser())
        with pytest.warns(RuntimeWarning, match="raised ValueError"):
            bus.emit("a", x=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            bus.emit("a", x=2)
        assert len(bus.errors) == 2

    def test_distinct_offenders_each_warn(self, bus):
        bus.subscribe(_raiser())
        bus.subscribe(_raiser(TypeError("other")))
        with pytest.warns(RuntimeWarning) as record:
            bus.emit("a", x=1)
        assert len(record) == 2

    def test_error_log_is_bounded(self, bus):
        bus.subscribe(_raiser())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for i in range(50):
                bus.emit("a", i=i)
        assert len(bus.errors) == 16

    def test_clear_resets_errors_and_warn_state(self, bus):
        bus.subscribe(_raiser())
        with pytest.warns(RuntimeWarning):
            bus.emit("a", x=1)
        bus.clear()
        assert bus.errors == []
        offender = _raiser()
        bus.subscribe(offender)
        with pytest.warns(RuntimeWarning):
            bus.emit("a", x=2)


class TestBackend:
    def test_backend_receives_without_flipping_active(self, bus):
        seen = []
        bus.set_backend(seen.append)
        assert not bus.active  # hot-path gate stays off
        bus.emit("service.claim", task="t")
        assert [e.name for e in seen] == ["service.claim"]

    def test_backend_topic_filter(self, bus):
        seen = []
        bus.set_backend(seen.append, topics=["service."])
        bus.emit("service.claim", task="t")
        bus.emit("sweep.chunk", figure="fig2")
        assert [e.name for e in seen] == ["service.claim"]

    def test_set_backend_returns_previous(self, bus):
        first, second = [], []
        sink_a, sink_b = first.append, second.append
        assert bus.set_backend(sink_a) is None
        assert bus.set_backend(sink_b) is sink_a
        bus.emit("a", x=1)
        assert not first and len(second) == 1
        bus.set_backend(None)
        bus.emit("a", x=2)
        assert len(second) == 1

    def test_backend_survives_clear(self, bus):
        seen = []
        bus.set_backend(seen.append)
        bus.clear()
        bus.emit("a", x=1)
        assert len(seen) == 1

    def test_raising_backend_does_not_block_subscribers(self, bus):
        seen = []
        bus.set_backend(_raiser())
        bus.subscribe(seen.append)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            bus.emit("a", x=1)
        assert len(seen) == 1
        assert len(bus.errors) == 1

    def test_raising_subscriber_does_not_block_backend(self, bus):
        seen = []
        bus.subscribe(_raiser())
        bus.set_backend(seen.append)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            bus.emit("a", x=1)
        assert len(seen) == 1

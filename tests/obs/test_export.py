"""Unit tests for the Chrome-trace and Prometheus exporters."""

import json

import pytest

from repro import obs
from repro.core import HDLTS
from repro.obs.export import (
    SCHEDULE_PID,
    WALL_PID,
    chrome_trace,
    prometheus_text,
    read_span_records,
    schedule_trace_events,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def _record(kind, span_id, parent_id=0, pid=100, wall0=10.0, dur=0.5, **attrs):
    row = {
        "event": "span.end",
        "ts": wall0 + dur,
        "kind": kind,
        "span_id": span_id,
        "parent_id": parent_id,
        "pid": pid,
        "wall0": wall0,
        "dur_s": dur,
    }
    row.update(attrs)
    return row


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace([_record("sweep.run", 1)])
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"

    def test_spans_become_complete_events(self):
        doc = chrome_trace(
            [_record("sweep.chunk", 2, pid=7, wall0=11.0, dur=0.25, x=1.0)]
        )
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["pid"] == WALL_PID and event["tid"] == 7
        assert event["cat"] == "sweep.chunk"
        assert event["dur"] == pytest.approx(0.25e6)
        assert event["args"]["x"] == 1.0
        assert event["args"]["span_id"] == 2

    def test_timestamps_relative_to_earliest_span(self):
        doc = chrome_trace(
            [
                _record("sweep.run", 1, wall0=100.0),
                _record("sweep.chunk", 2, wall0=101.5),
            ]
        )
        xs = sorted(
            (e for e in doc["traceEvents"] if e["ph"] == "X"),
            key=lambda e: e["ts"],
        )
        assert xs[0]["ts"] == 0.0
        assert xs[1]["ts"] == pytest.approx(1.5e6)

    def test_one_lane_per_pid_main_first(self):
        doc = chrome_trace(
            [
                _record("sweep.chunk", 2, pid=50),
                _record("sweep.run", 1, pid=99),
            ]
        )
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {99: "main 99", 50: "worker 50"}
        orders = {
            e["tid"]: e["args"]["sort_index"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_sort_index"
        }
        assert orders[99] < orders[50]

    def test_span_name_prefers_name_attribute(self):
        doc = chrome_trace([_record("scheduler.run", 1, name="HDLTS")])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["name"] == "HDLTS"

    def test_empty_records_still_valid(self):
        doc = chrome_trace([])
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        json.dumps(doc)  # serializable


class TestScheduleOverlay:
    @pytest.fixture
    def schedule(self, fig1):
        return HDLTS().run(fig1).schedule

    def test_overlay_lanes_match_cpus(self, schedule, fig1):
        events = schedule_trace_events(schedule)
        lanes = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert lanes == [f"P{p + 1}" for p in range(fig1.n_procs)]

    def test_overlay_slot_count_and_units(self, schedule):
        events = [
            e for e in schedule_trace_events(schedule, sim_unit_us=1000.0)
            if e["ph"] == "X"
        ]
        slots = sum(
            len(t.slots()) for t in schedule.timelines
        )
        assert len(events) == slots
        makespan_us = schedule.makespan * 1000.0
        assert max(e["ts"] + e["dur"] for e in events) == pytest.approx(
            makespan_us
        )

    def test_duplicates_marked(self, schedule):
        assert schedule.duplicates()
        events = [
            e for e in schedule_trace_events(schedule)
            if e["ph"] == "X" and e["args"]["duplicate"]
        ]
        assert events and all(e["name"].endswith("'") for e in events)

    def test_combined_trace_keeps_processes_apart(self, schedule):
        doc = chrome_trace(
            [_record("scheduler.run", 1)], schedule=schedule
        )
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {WALL_PID, SCHEDULE_PID}


class TestReadSpanRecords:
    def test_reads_only_spans_and_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [
            json.dumps(_record("sweep.chunk", 1)),
            json.dumps({"event": "sweep.point", "ts": 1.0}),
            json.dumps(_record("sweep.chunk", 2)),
            '{"event": "span.end", "trunc',
            json.dumps(_record("sweep.chunk", 3)),
        ]
        path.write_text("\n".join(lines) + "\n")
        records = read_span_records(path)
        assert [r["span_id"] for r in records] == [1, 2]

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, [_record("sweep.run", 1)])
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc and "displayTimeUnit" in doc


class TestRecorderIntegration:
    def test_recorder_records_feed_exporter(self, fig1):
        recorder = obs.SpanRecorder()
        unsubscribe = obs.subscribe(recorder, topics=[obs.SPAN_TOPIC])
        try:
            with obs.tracing_scope(True):
                result = HDLTS().run(fig1)
        finally:
            unsubscribe()
        doc = chrome_trace(recorder.records, schedule=result.schedule)
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "scheduler.run" in cats and "schedule" in cats
        json.dumps(doc)


class TestPrometheusText:
    def test_counter_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("HDLTS/decisions").inc(5)
        registry.gauge("sweep/chunk_imbalance").set(1.25)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_HDLTS_decisions_total counter" in text
        assert "repro_HDLTS_decisions_total 5" in text
        assert "repro_sweep_chunk_imbalance 1.25" in text
        assert text.endswith("\n")

    def test_timer_summary(self):
        registry = MetricsRegistry()
        registry.timer("sweep/chunk_wall").observe(0.5)
        registry.timer("sweep/chunk_wall").observe(1.5)
        text = prometheus_text(registry.snapshot())
        assert "repro_sweep_chunk_wall_seconds_count 2" in text
        assert "repro_sweep_chunk_wall_seconds_sum 2.0" in text
        assert "repro_sweep_chunk_wall_seconds_min 0.5" in text
        assert "repro_sweep_chunk_wall_seconds_max 1.5" in text

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        text = prometheus_text(registry.snapshot())
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="10.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_write_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.prom"
        write_prometheus(path, registry.snapshot())
        assert path.read_text().endswith("\n")

    def test_empty_snapshot(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == "\n"

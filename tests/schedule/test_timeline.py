"""Unit tests for ProcessorTimeline (append + insertion EST)."""

import pytest

from repro.schedule.timeline import ProcessorTimeline, Slot


@pytest.fixture
def timeline():
    return ProcessorTimeline(proc=0)


class TestReserve:
    def test_avail_tracks_last_finish(self, timeline):
        assert timeline.avail == 0.0
        timeline.reserve(1, 0.0, 5.0)
        assert timeline.avail == 5.0
        timeline.reserve(2, 8.0, 2.0)
        assert timeline.avail == 10.0

    def test_overlap_rejected(self, timeline):
        timeline.reserve(1, 0.0, 5.0)
        with pytest.raises(ValueError, match="overlaps"):
            timeline.reserve(2, 4.0, 3.0)

    def test_adjacent_slots_allowed(self, timeline):
        timeline.reserve(1, 0.0, 5.0)
        timeline.reserve(2, 5.0, 5.0)  # touching is fine
        assert len(timeline) == 2

    def test_insert_into_gap(self, timeline):
        timeline.reserve(1, 10.0, 5.0)
        timeline.reserve(2, 0.0, 5.0)  # before the existing slot
        slots = timeline.slots()
        assert [s.task for s in slots] == [2, 1]  # sorted by start

    def test_zero_duration_slot(self, timeline):
        """Pseudo tasks have zero cost; they must be placeable."""
        timeline.reserve(1, 3.0, 0.0)
        assert timeline.avail == 3.0

    def test_slot_validates_interval(self):
        with pytest.raises(ValueError, match="ends before"):
            Slot(5.0, 2.0, 0)


class TestEarliestStart:
    def test_append_mode_ignores_gaps(self, timeline):
        timeline.reserve(1, 10.0, 5.0)
        assert timeline.earliest_start(0.0, 2.0, insertion=False) == 15.0

    def test_insertion_uses_leading_gap(self, timeline):
        timeline.reserve(1, 10.0, 5.0)
        assert timeline.earliest_start(0.0, 2.0, insertion=True) == 0.0

    def test_insertion_gap_too_small_falls_through(self, timeline):
        timeline.reserve(1, 3.0, 5.0)
        # leading gap is [0, 3): too small for duration 4
        assert timeline.earliest_start(0.0, 4.0, insertion=True) == 8.0

    def test_insertion_respects_ready_time(self, timeline):
        timeline.reserve(1, 0.0, 2.0)
        timeline.reserve(2, 10.0, 5.0)
        # gap [2, 10) exists but the task is only ready at 6
        assert timeline.earliest_start(6.0, 3.0, insertion=True) == 6.0

    def test_insertion_middle_gap(self, timeline):
        timeline.reserve(1, 0.0, 2.0)
        timeline.reserve(2, 10.0, 5.0)
        assert timeline.earliest_start(0.0, 8.0, insertion=True) == 2.0

    def test_empty_timeline(self, timeline):
        assert timeline.earliest_start(7.0, 3.0) == 7.0
        assert timeline.earliest_start(7.0, 3.0, insertion=True) == 7.0

    def test_exact_fit_gap(self, timeline):
        timeline.reserve(1, 0.0, 2.0)
        timeline.reserve(2, 5.0, 5.0)
        assert timeline.earliest_start(0.0, 3.0, insertion=True) == 2.0

    def test_negative_inputs_rejected(self, timeline):
        with pytest.raises(ValueError):
            timeline.earliest_start(-1.0, 1.0)
        with pytest.raises(ValueError):
            timeline.earliest_start(0.0, -1.0)


class TestQueries:
    def test_fits(self, timeline):
        timeline.reserve(1, 5.0, 5.0)
        assert timeline.fits(0.0, 5.0)
        assert timeline.fits(10.0, 12.0)
        assert not timeline.fits(4.0, 6.0)
        assert not timeline.fits(9.0, 11.0)
        assert not timeline.fits(-2.0, -1.0)

    def test_first_busy(self, timeline):
        assert timeline.first_busy == float("inf")
        timeline.reserve(1, 4.0, 2.0)
        assert timeline.first_busy == 4.0

    def test_busy_time(self, timeline):
        timeline.reserve(1, 0.0, 3.0)
        timeline.reserve(2, 10.0, 2.0)
        assert timeline.busy_time() == 5.0

    def test_idle_gaps(self, timeline):
        timeline.reserve(1, 2.0, 3.0)
        timeline.reserve(2, 8.0, 2.0)
        assert timeline.idle_gaps() == [(0.0, 2.0), (5.0, 8.0)]

    def test_idle_gaps_with_horizon(self, timeline):
        timeline.reserve(1, 2.0, 3.0)
        assert timeline.idle_gaps(horizon=9.0) == [(0.0, 2.0), (5.0, 9.0)]

    def test_remove(self, timeline):
        timeline.reserve(1, 0.0, 3.0)
        timeline.reserve(2, 5.0, 3.0)
        timeline.remove(1)
        assert [s.task for s in timeline.slots()] == [2]
        with pytest.raises(KeyError):
            timeline.remove(1)

    def test_remove_only_duplicate(self, timeline):
        timeline.reserve(1, 0.0, 3.0, duplicate=True)
        timeline.reserve(1, 5.0, 3.0, duplicate=False)
        timeline.remove(1, duplicate=True)
        slots = timeline.slots()
        assert len(slots) == 1 and not slots[0].duplicate

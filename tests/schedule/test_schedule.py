"""Unit tests for the Schedule container."""

import pytest

from repro.schedule.schedule import Schedule


class TestPlacement:
    def test_place_defaults_duration_to_w(self, diamond):
        schedule = Schedule(diamond)
        assignment = schedule.place(0, 1, 0.0)
        assert assignment.finish == 4.0  # W(A, P2)
        assert schedule.proc_of(0) == 1

    def test_double_primary_rejected(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        with pytest.raises(ValueError, match="already has a primary"):
            schedule.place(0, 1, 10.0)

    def test_duplicates_tracked_separately(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(0, 1, 0.0, duplicate=True)
        assert len(schedule.copies(0)) == 2
        assert len(schedule.duplicates(0)) == 1
        assert len(schedule.duplicates()) == 1
        assert schedule.proc_of(0) == 0  # primary wins

    def test_unplace(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.unplace(0)
        assert not schedule.is_scheduled(0)
        assert schedule.timelines[0].avail == 0.0
        with pytest.raises(KeyError):
            schedule.unplace(0)

    def test_is_complete(self, diamond):
        schedule = Schedule(diamond)
        assert not schedule.is_complete()
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 1, 0.0)
        schedule.place(3, 0, 20.0)
        assert schedule.is_complete()
        assert schedule.n_scheduled == 4


class TestTimeQueries:
    def test_makespan_is_max_primary_finish(self, diamond):
        schedule = Schedule(diamond)
        assert schedule.makespan == 0.0
        schedule.place(0, 0, 0.0)  # finish 2
        schedule.place(1, 0, 2.0)  # finish 5
        assert schedule.makespan == 5.0

    def test_makespan_ignores_trailing_duplicate(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(0, 1, 50.0, duplicate=True)
        assert schedule.makespan == 2.0

    def test_arrival_time_same_vs_cross_proc(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)  # A on P1, finish 2
        # edge A->B has comm 5
        assert schedule.arrival_time(0, 1, 0) == 2.0
        assert schedule.arrival_time(0, 1, 1) == 7.0

    def test_arrival_time_picks_cheapest_copy(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)  # primary finish 2 on P1
        schedule.place(0, 1, 0.0, duplicate=True)  # dup finish 4 on P2
        # on P2 the local dup (4) beats primary + comm (2 + 5)
        assert schedule.arrival_time(0, 1, 1) == 4.0

    def test_arrival_requires_scheduled_parent(self, diamond):
        schedule = Schedule(diamond)
        with pytest.raises(ValueError, match="not scheduled"):
            schedule.arrival_time(0, 1, 0)

    def test_ready_time_max_over_parents(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)  # A: finish 2
        schedule.place(1, 0, 2.0)  # B on P1: finish 5
        schedule.place(2, 1, 3.0)  # C on P2: finish 7
        # D on P1: from B local 5; from C remote 7 + 3 = 10
        assert schedule.ready_time(3, 0) == 10.0
        # D on P2: from B remote 5 + 2 = 7; from C local 7
        assert schedule.ready_time(3, 1) == 7.0

    def test_entry_ready_time_is_zero(self, diamond):
        schedule = Schedule(diamond)
        assert schedule.ready_time(0, 0) == 0.0

    def test_finish_of_unscheduled_raises(self, diamond):
        schedule = Schedule(diamond)
        with pytest.raises(KeyError, match="not scheduled"):
            schedule.finish_of(2)


class TestUtilization:
    def test_empty_schedule(self, diamond):
        assert Schedule(diamond).utilization() == [0.0, 0.0]

    def test_utilization_fractions(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)  # busy 2 of 8
        schedule.place(2, 1, 4.0)  # busy 4 of 8, makespan 8
        util = schedule.utilization()
        assert util[0] == pytest.approx(0.25)
        assert util[1] == pytest.approx(0.5)

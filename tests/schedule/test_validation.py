"""Unit tests for the schedule feasibility validator."""

import pytest

from repro.schedule.schedule import Schedule
from repro.schedule.validation import ScheduleError, validate_schedule


def complete_diamond_schedule(diamond) -> Schedule:
    """A hand-built feasible schedule for the diamond fixture."""
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)   # A on P1: [0, 2)
    schedule.place(1, 0, 2.0)   # B on P1: [2, 5) (local data)
    schedule.place(2, 1, 3.0)   # C on P2: [3, 7) (A arrives at 2 + 1)
    schedule.place(3, 1, 7.0)   # D on P2: B remote 5 + 2 = 7; C local 7
    return schedule


def test_feasible_schedule_passes(diamond):
    validate_schedule(diamond, complete_diamond_schedule(diamond))


def test_missing_task_reported(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)
    with pytest.raises(ScheduleError, match="not scheduled"):
        validate_schedule(diamond, schedule)


def test_precedence_violation_reported(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)       # A finish 2
    schedule.place(1, 1, 0.0)       # B on P2 starts before A's data (7)
    schedule.place(2, 1, 10.0)
    schedule.place(3, 0, 30.0)
    with pytest.raises(ScheduleError, match="before data from parent"):
        validate_schedule(diamond, schedule)


def test_wrong_duration_reported(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0, duration=99.0)  # W(A, P1) is 2
    schedule.place(1, 0, 99.0)
    schedule.place(2, 1, 200.0)
    schedule.place(3, 1, 300.0)
    with pytest.raises(ScheduleError, match="expected W"):
        validate_schedule(diamond, schedule)


def test_duplicate_must_respect_its_own_constraints(diamond):
    schedule = complete_diamond_schedule(diamond)
    # a bogus duplicate of B placed before A's data can reach P2 --
    # wait: B's parent A is on P1 finish 2, comm 5 -> arrives P2 at 7.
    # But timeline P2 has [3, 7) and [7, ...) so use a free early window.
    schedule.place(1, 1, 0.0, duplicate=True)
    with pytest.raises(ScheduleError, match="before data from parent"):
        validate_schedule(diamond, schedule)


def test_valid_entry_duplicate_accepted(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)                  # A on P1: [0, 2)
    schedule.place(0, 1, 0.0, duplicate=True)  # A' on P2: [0, 4)
    schedule.place(1, 1, 4.0)                  # B on P2 reads local dup
    schedule.place(2, 1, 5.0)
    schedule.place(3, 1, 9.0)
    validate_schedule(diamond, schedule)


def test_all_violations_collected(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)
    schedule.place(1, 1, 0.0)  # precedence violation
    # tasks 2, 3 missing: two more problems
    try:
        validate_schedule(diamond, schedule)
    except ScheduleError as err:
        assert len(err.problems) >= 3
    else:
        pytest.fail("expected ScheduleError")


def test_every_scheduler_output_validates(fig1):
    from repro.baselines.registry import SCHEDULER_FACTORIES

    for name, factory in SCHEDULER_FACTORIES.items():
        result = factory().run(fig1)
        validate_schedule(fig1, result.schedule)

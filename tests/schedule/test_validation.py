"""Unit tests for the schedule feasibility validator."""

import pytest

from repro.schedule.schedule import Assignment, Schedule
from repro.schedule.timeline import Slot
from repro.schedule.validation import (
    FEASIBILITY_EPS,
    ScheduleError,
    validate_schedule,
)


def complete_diamond_schedule(diamond) -> Schedule:
    """A hand-built feasible schedule for the diamond fixture."""
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)   # A on P1: [0, 2)
    schedule.place(1, 0, 2.0)   # B on P1: [2, 5) (local data)
    schedule.place(2, 1, 3.0)   # C on P2: [3, 7) (A arrives at 2 + 1)
    schedule.place(3, 1, 7.0)   # D on P2: B remote 5 + 2 = 7; C local 7
    return schedule


def test_feasible_schedule_passes(diamond):
    validate_schedule(diamond, complete_diamond_schedule(diamond))


def test_missing_task_reported(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)
    with pytest.raises(ScheduleError, match="not scheduled"):
        validate_schedule(diamond, schedule)


def test_precedence_violation_reported(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)       # A finish 2
    schedule.place(1, 1, 0.0)       # B on P2 starts before A's data (7)
    schedule.place(2, 1, 10.0)
    schedule.place(3, 0, 30.0)
    with pytest.raises(ScheduleError, match="before data from parent"):
        validate_schedule(diamond, schedule)


def test_wrong_duration_reported(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0, duration=99.0)  # W(A, P1) is 2
    schedule.place(1, 0, 99.0)
    schedule.place(2, 1, 200.0)
    schedule.place(3, 1, 300.0)
    with pytest.raises(ScheduleError, match="expected W"):
        validate_schedule(diamond, schedule)


def test_duplicate_must_respect_its_own_constraints(diamond):
    schedule = complete_diamond_schedule(diamond)
    # a bogus duplicate of B placed before A's data can reach P2 --
    # wait: B's parent A is on P1 finish 2, comm 5 -> arrives P2 at 7.
    # But timeline P2 has [3, 7) and [7, ...) so use a free early window.
    schedule.place(1, 1, 0.0, duplicate=True)
    with pytest.raises(ScheduleError, match="before data from parent"):
        validate_schedule(diamond, schedule)


def test_valid_entry_duplicate_accepted(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)                  # A on P1: [0, 2)
    schedule.place(0, 1, 0.0, duplicate=True)  # A' on P2: [0, 4)
    schedule.place(1, 1, 4.0)                  # B on P2 reads local dup
    schedule.place(2, 1, 5.0)
    schedule.place(3, 1, 9.0)
    validate_schedule(diamond, schedule)


def test_all_violations_collected(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0)
    schedule.place(1, 1, 0.0)  # precedence violation
    # tasks 2, 3 missing: two more problems
    try:
        validate_schedule(diamond, schedule)
    except ScheduleError as err:
        assert len(err.problems) >= 3
    else:
        pytest.fail("expected ScheduleError")


def _force_copy(schedule, task, proc, start, duration):
    """Inject a duplicate copy bypassing the timeline's overlap guard.

    ``place``/``reserve`` refuse the corrupt states the validator exists
    to catch, so these tests write the slot and assignment directly.
    """
    schedule.timelines[proc]._slots.append(
        Slot(start, start + duration, task, True)
    )
    schedule._duplicates.setdefault(task, []).append(
        Assignment(task, proc, start, start + duration, True)
    )


def test_overlapping_duplicate_copies_reported(diamond):
    schedule = complete_diamond_schedule(diamond)
    # a duplicate of A on P1 over [1, 5) collides with C's [3, 7) slot
    _force_copy(schedule, 0, 1, 1.0, 4.0)
    with pytest.raises(ScheduleError, match="overlaps"):
        validate_schedule(diamond, schedule)


def test_duplicate_before_time_zero_reported(diamond):
    schedule = complete_diamond_schedule(diamond)
    _force_copy(schedule, 0, 1, -4.0, 4.0)
    with pytest.raises(ScheduleError, match="before time 0"):
        validate_schedule(diamond, schedule)


def test_wrong_duplicate_duration_reported(diamond):
    schedule = complete_diamond_schedule(diamond)
    # W(A, P2) is 4; a 2.5-long duplicate fits P2's idle [0, 3) window
    # without overlapping, so only the duration check can see it
    schedule.place(0, 1, 0.0, duration=2.5, duplicate=True)
    with pytest.raises(ScheduleError, match="expected W"):
        validate_schedule(diamond, schedule)


def test_sub_epsilon_duration_error_tolerated(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0, duration=2.0 + FEASIBILITY_EPS / 2)
    schedule.place(1, 0, 2.0 + FEASIBILITY_EPS / 2)
    schedule.place(2, 1, 3.0 + FEASIBILITY_EPS)
    schedule.place(3, 1, 7.0 + FEASIBILITY_EPS)
    validate_schedule(diamond, schedule)  # within the shared tolerance


def test_multi_violation_accumulation_exact_count(diamond):
    schedule = Schedule(diamond)
    schedule.place(0, 0, 0.0, duration=5.0)  # wrong duration (W is 2)
    schedule.place(1, 1, 0.0)                # precedence: data arrives at 10
    # tasks 2 and 3 missing: one problem each
    with pytest.raises(ScheduleError) as excinfo:
        validate_schedule(diamond, schedule)
    problems = excinfo.value.problems
    assert len(problems) == 4
    assert sum("expected W" in p for p in problems) == 1
    assert sum("before data from parent" in p for p in problems) == 1
    assert sum("not scheduled" in p for p in problems) == 2


def test_every_scheduler_output_validates(fig1):
    from repro.baselines.registry import SCHEDULER_FACTORIES

    for name, factory in SCHEDULER_FACTORIES.items():
        result = factory().run(fig1)
        validate_schedule(fig1, result.schedule)

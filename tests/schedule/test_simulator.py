"""Unit tests for the discrete-event schedule simulator."""

import pytest

from repro.core import HDLTS
from repro.baselines import HEFT
from repro.schedule.schedule import Schedule
from repro.schedule.simulator import DeadlockError, ScheduleSimulator
from tests.conftest import make_random_graph


class TestExactReplay:
    def test_hdlts_fig1_matches_analytic(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        sim = ScheduleSimulator(fig1).run(schedule)
        assert sim.makespan == pytest.approx(73.0)
        for task in fig1.tasks():
            assert sim.finish_of(task) == pytest.approx(schedule.finish_of(task))
            assert sim.proc_of[task] == schedule.proc_of(task)

    def test_heft_fig1_matches_analytic(self, fig1):
        schedule = HEFT().run(fig1).schedule
        sim = ScheduleSimulator(fig1).run(schedule)
        assert sim.makespan == pytest.approx(80.0)

    def test_insertion_schedules_never_get_worse(self):
        """Compacting an insertion-based schedule can only help."""
        graph = make_random_graph(seed=11, v=80, ccr=3.0)
        schedule = HEFT(insertion=True).run(graph).schedule
        sim = ScheduleSimulator(graph).run(schedule)
        assert sim.makespan <= schedule.makespan + 1e-6


class TestPerturbedReplay:
    def test_doubled_durations_double_lowerbound(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        sim = ScheduleSimulator(fig1).run(
            schedule, duration_fn=lambda t, p: 2.0 * fig1.cost(t, p)
        )
        assert sim.makespan > 73.0

    def test_zero_durations_leave_only_comm(self, diamond):
        schedule = Schedule(diamond)
        schedule.place(0, 0, 0.0)
        schedule.place(1, 0, 2.0)
        schedule.place(2, 0, 5.0)
        schedule.place(3, 0, 9.0)
        sim = ScheduleSimulator(diamond).run(schedule, duration_fn=lambda t, p: 0.0)
        assert sim.makespan == 0.0  # same CPU: no comm either

    def test_release_time_shifts_everything(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        sim = ScheduleSimulator(fig1).run(schedule, release_time=100.0)
        assert sim.makespan == pytest.approx(173.0)


class TestErrorCases:
    def test_deadlock_detected(self, diamond):
        # P1 queue: [D, A] -- D waits for B/C which wait for A behind D
        sim = ScheduleSimulator(diamond)
        queues = [[(3, False), (0, False)], [(1, False), (2, False)]]
        with pytest.raises(DeadlockError):
            sim.run_queues(queues)

    def test_wrong_queue_count_rejected(self, diamond):
        with pytest.raises(ValueError, match="queues"):
            ScheduleSimulator(diamond).run_queues([[]])

    def test_missing_task_rejected(self, diamond):
        queues = [[(0, False), (1, False)], [(2, False)]]  # task 3 missing
        with pytest.raises(ValueError, match="never executed"):
            ScheduleSimulator(diamond).run_queues(queues)

    def test_double_primary_rejected(self, diamond):
        queues = [
            [(0, False), (1, False), (3, False)],
            [(2, False), (3, False)],
        ]
        with pytest.raises(ValueError, match="two primary"):
            ScheduleSimulator(diamond).run_queues(queues)


class TestDuplicates:
    def test_duplicate_copy_feeds_local_children(self, diamond):
        # A' duplicated on P2; B on P2 should start at the dup's finish
        queues = [
            [(0, False)],
            [(0, True), (1, False), (2, False), (3, False)],
        ]
        sim = ScheduleSimulator(diamond).run_queues(queues)
        assert sim.start_times[1] == pytest.approx(4.0)  # dup finish on P2

    def test_cross_scheduler_consistency(self):
        """Analytic makespan == simulated makespan for non-insertion runs."""
        graph = make_random_graph(seed=21, v=60, ccr=2.0)
        schedule = HDLTS().run(graph).schedule
        sim = ScheduleSimulator(graph).run(schedule)
        assert sim.makespan == pytest.approx(schedule.makespan)

"""Unit tests for the contention-aware simulator (extension)."""

import pytest

from repro.core import HDLTS
from repro.baselines import HEFT
from repro.schedule.contention import ContentionSimulator
from repro.schedule.simulator import ScheduleSimulator
from tests.conftest import make_random_graph


class TestBasics:
    def test_fig1_contention_inflates_or_ties(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        free = ScheduleSimulator(fig1).run(schedule).makespan
        contended = ContentionSimulator(fig1).run(schedule)
        assert contended.makespan >= free - 1e-6
        assert set(contended.finish_times) == set(fig1.tasks())

    def test_single_cpu_unaffected(self):
        graph = make_random_graph(seed=3, v=30, n_procs=1)
        schedule = HDLTS().run(graph).schedule
        contended = ContentionSimulator(graph).run(schedule)
        assert contended.makespan == pytest.approx(schedule.makespan)
        assert contended.transfers == []

    def test_zero_comm_graph_unaffected(self, fig1):
        free_graph = fig1.scaled_comm(0.0)
        schedule = HEFT().run(free_graph).schedule
        contended = ContentionSimulator(free_graph).run(schedule)
        assert contended.makespan == pytest.approx(schedule.makespan)
        assert contended.transfers == []

    def test_transfers_recorded_with_costs(self, fig1):
        schedule = HEFT().run(fig1).schedule
        result = ContentionSimulator(fig1).run(schedule)
        assert result.transfers
        for t in result.transfers:
            assert t.finish - t.start == pytest.approx(
                fig1.comm_cost(t.src_task, t.dst_task)
            )
            assert t.src_proc != t.dst_proc


class TestNicSerialization:
    def test_transfers_on_one_nic_never_overlap(self):
        graph = make_random_graph(seed=7, v=60, ccr=3.0, n_procs=4)
        schedule = HEFT().run(graph).schedule
        result = ContentionSimulator(graph).run(schedule)
        by_nic = {}
        for t in result.transfers:
            by_nic.setdefault(t.src_proc, []).append((t.start, t.finish))
            by_nic.setdefault(t.dst_proc, []).append((t.start, t.finish))
        for intervals in by_nic.values():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert f1 <= s2 + 1e-9

    def test_tasks_start_after_their_transfers(self):
        graph = make_random_graph(seed=8, v=50, ccr=2.0)
        schedule = HDLTS().run(graph).schedule
        result = ContentionSimulator(graph).run(schedule)
        arrivals = {}
        for t in result.transfers:
            arrivals[(t.src_task, t.dst_task)] = t.finish
        for edge in graph.edges():
            key = (edge.src, edge.dst)
            if key in arrivals:
                assert result.start_times[edge.dst] >= arrivals[key] - 1e-9

    def test_inflation_grows_with_ccr(self):
        """The contention-free assumption costs more on data-heavy DAGs."""
        inflations = {}
        for ccr in (0.5, 5.0):
            total = 0.0
            for seed in range(5):
                graph = make_random_graph(seed=seed, v=50, ccr=ccr, n_procs=4)
                schedule = HEFT().run(graph).schedule
                result = ContentionSimulator(graph).run(schedule)
                total += result.inflation(
                    ScheduleSimulator(graph).run(schedule).makespan
                )
            inflations[ccr] = total / 5
        assert inflations[5.0] > inflations[0.5]

    def test_all_schedulers_replayable(self, fig1):
        from repro.baselines.registry import SCHEDULER_FACTORIES

        for name, factory in SCHEDULER_FACTORIES.items():
            schedule = factory().run(fig1).schedule
            result = ContentionSimulator(fig1).run(schedule)
            assert set(result.finish_times) == set(fig1.tasks()), name

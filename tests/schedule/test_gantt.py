"""Unit tests for the ASCII Gantt renderer."""

from repro.core import HDLTS
from repro.schedule.gantt import render_gantt
from repro.schedule.schedule import Schedule


def test_empty_schedule_renders_idle(diamond):
    text = render_gantt(Schedule(diamond))
    assert "(idle)" in text
    assert text.count("\n") >= 1


def test_one_row_per_cpu_plus_axis(fig1):
    schedule = HDLTS().run(fig1).schedule
    text = render_gantt(schedule)
    lines = text.splitlines()
    assert len(lines) == fig1.n_procs + 1  # rows + time axis
    assert lines[0].startswith("P1 |")
    assert lines[2].startswith("P3 |")


def test_task_labels_present(fig1):
    schedule = HDLTS().run(fig1).schedule
    text = render_gantt(schedule, width=120)
    for name in ("T1", "T6", "T10"):
        assert f"[{name}" in text


def test_duplicate_marked_with_apostrophe(fig1):
    schedule = HDLTS().run(fig1).schedule
    assert len(schedule.duplicates()) > 0
    text = render_gantt(schedule, width=120)
    assert "[T1']" in text


def test_makespan_in_footer(fig1):
    schedule = HDLTS().run(fig1).schedule
    assert "t=73.00" in render_gantt(schedule)


def test_narrow_width_does_not_crash(fig1):
    schedule = HDLTS().run(fig1).schedule
    text = render_gantt(schedule, width=10)
    assert text  # labels dropped but rendering succeeds

"""Unit tests for the Gantt lane extractor and ASCII renderer."""

from repro.core import HDLTS
from repro.schedule.gantt import GanttSlot, gantt_lanes, render_gantt
from repro.schedule.schedule import Schedule


class TestGanttLanes:
    def test_one_lane_per_cpu_in_order(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        lanes = gantt_lanes(schedule)
        assert [label for label, _ in lanes] == ["P1", "P2", "P3"]

    def test_slots_sorted_and_cover_every_copy(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        lanes = gantt_lanes(schedule)
        total = sum(len(slots) for _, slots in lanes)
        assert total == sum(len(t.slots()) for t in schedule.timelines)
        for _, slots in lanes:
            starts = [s.start for s in slots]
            assert starts == sorted(starts)
            assert all(isinstance(s, GanttSlot) for s in slots)
            assert all(s.end >= s.start for s in slots)

    def test_duplicate_labels_get_apostrophe(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        assert schedule.duplicates()
        dup_slots = [
            s for _, slots in gantt_lanes(schedule) for s in slots
            if s.duplicate
        ]
        assert dup_slots and all(s.label.endswith("'") for s in dup_slots)

    def test_empty_schedule_gives_empty_lanes(self, diamond):
        lanes = gantt_lanes(Schedule(diamond))
        assert [label for label, _ in lanes] == ["P1", "P2"]
        assert all(slots == [] for _, slots in lanes)

    def test_renderer_consumes_lanes(self, fig1):
        # the ASCII view and the exporter must agree on lane content
        schedule = HDLTS().run(fig1).schedule
        text = render_gantt(schedule, width=120)
        for _, slots in gantt_lanes(schedule):
            for slot in slots:
                assert f"[{slot.label}]" in text


def test_empty_schedule_renders_idle(diamond):
    text = render_gantt(Schedule(diamond))
    assert "(idle)" in text
    assert text.count("\n") >= 1


def test_one_row_per_cpu_plus_axis(fig1):
    schedule = HDLTS().run(fig1).schedule
    text = render_gantt(schedule)
    lines = text.splitlines()
    assert len(lines) == fig1.n_procs + 1  # rows + time axis
    assert lines[0].startswith("P1 |")
    assert lines[2].startswith("P3 |")


def test_task_labels_present(fig1):
    schedule = HDLTS().run(fig1).schedule
    text = render_gantt(schedule, width=120)
    for name in ("T1", "T6", "T10"):
        assert f"[{name}" in text


def test_duplicate_marked_with_apostrophe(fig1):
    schedule = HDLTS().run(fig1).schedule
    assert len(schedule.duplicates()) > 0
    text = render_gantt(schedule, width=120)
    assert "[T1']" in text


def test_makespan_in_footer(fig1):
    schedule = HDLTS().run(fig1).schedule
    assert "t=73.00" in render_gantt(schedule)


def test_narrow_width_does_not_crash(fig1):
    schedule = HDLTS().run(fig1).schedule
    text = render_gantt(schedule, width=10)
    assert text  # labels dropped but rendering succeeds

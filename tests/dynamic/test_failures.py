"""Unit tests for the fail-stop failure model."""

import pytest

from repro.dynamic.failures import FailStop, failure_times


def test_valid_failure():
    f = FailStop(proc=1, at_time=50.0)
    assert f.proc == 1 and f.at_time == 50.0


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        FailStop(proc=-1, at_time=1.0)
    with pytest.raises(ValueError):
        FailStop(proc=0, at_time=-1.0)


def test_failure_times_table():
    table = failure_times([FailStop(0, 10.0), FailStop(2, 5.0)], n_procs=3)
    assert table == {0: 10.0, 2: 5.0}


def test_earliest_failure_wins():
    table = failure_times([FailStop(0, 10.0), FailStop(0, 3.0)], n_procs=2)
    assert table == {0: 3.0}


def test_none_means_empty():
    assert failure_times(None, n_procs=4) == {}


def test_out_of_range_proc_rejected():
    with pytest.raises(ValueError, match="platform has"):
        failure_times([FailStop(5, 1.0)], n_procs=2)

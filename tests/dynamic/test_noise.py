"""Unit tests for execution-time perturbation models."""

import numpy as np
import pytest

from repro.dynamic.noise import exact_durations, gaussian_noise, uniform_noise


def test_exact_matches_w(fig1):
    fn = exact_durations(fig1)
    assert fn(0, 2) == 9.0
    assert fn(9, 1) == 7.0


class TestGaussian:
    def test_memoization(self, fig1, rng):
        fn = gaussian_noise(fig1, 0.5, rng)
        assert fn(3, 1) == fn(3, 1)  # repeated queries identical

    def test_zero_sigma_is_exact(self, fig1, rng):
        fn = gaussian_noise(fig1, 0.0, rng)
        for task in fig1.tasks():
            assert fn(task, 0) == fig1.cost(task, 0)

    def test_positive_durations(self, fig1):
        fn = gaussian_noise(fig1, 2.0, np.random.default_rng(0))
        for task in fig1.tasks():
            for proc in fig1.procs():
                assert fn(task, proc) > 0

    def test_mean_near_estimate(self, fig1):
        rng = np.random.default_rng(1)
        fn = gaussian_noise(fig1, 0.2, rng)
        draws = [fn(0, 0) for _ in range(1)] + [
            gaussian_noise(fig1, 0.2, np.random.default_rng(i))(0, 0)
            for i in range(300)
        ]
        assert np.mean(draws) == pytest.approx(14.0, rel=0.1)

    def test_negative_sigma_rejected(self, fig1, rng):
        with pytest.raises(ValueError):
            gaussian_noise(fig1, -0.1, rng)


class TestUniform:
    def test_bounds(self, fig1):
        fn = uniform_noise(fig1, 0.3, np.random.default_rng(0))
        for task in fig1.tasks():
            for proc in fig1.procs():
                w = fig1.cost(task, proc)
                assert 0.7 * w <= fn(task, proc) <= 1.3 * w

    def test_invalid_spread_rejected(self, fig1, rng):
        with pytest.raises(ValueError):
            uniform_noise(fig1, 1.0, rng)
        with pytest.raises(ValueError):
            uniform_noise(fig1, -0.5, rng)

    def test_memoization(self, fig1, rng):
        fn = uniform_noise(fig1, 0.3, rng)
        assert fn(5, 2) == fn(5, 2)

"""Unit tests for OnlineHDLTS (the dynamic extension)."""

import numpy as np
import pytest

from repro.core import HDLTS
from repro.dynamic.failures import FailStop
from repro.dynamic.noise import gaussian_noise
from repro.dynamic.online import (
    AllProcessorsFailed,
    OnlineHDLTS,
    replay_static,
)
from tests.conftest import make_random_graph


class TestExactDurations:
    def test_matches_offline_hdlts_on_fig1(self, fig1):
        result = OnlineHDLTS().execute(fig1)
        assert result.makespan == pytest.approx(73.0)
        assert result.n_lost == 0
        assert result.dead_procs == ()

    def test_all_tasks_complete(self, fig1):
        result = OnlineHDLTS().execute(fig1)
        assert set(result.finish_times) == set(fig1.tasks())

    def test_precedence_respected_in_realized_times(self):
        graph = make_random_graph(seed=3, v=60, ccr=2.0)
        result = OnlineHDLTS().execute(graph)
        for edge in graph.edges():
            src_finish = result.finish_times[edge.src]
            dst_start = result.finish_times[edge.dst] - graph.cost(
                edge.dst, result.proc_of[edge.dst]
            )
            comm = (
                0.0
                if result.proc_of[edge.src] == result.proc_of[edge.dst]
                else edge.cost
            )
            # the dst may read a *duplicate* of an entry parent, which
            # can legally beat src_finish + comm
            if edge.src != graph.entry_task:
                assert dst_start >= src_finish + comm - 1e-6

    def test_multi_entry_normalized(self):
        from repro.model.task_graph import TaskGraph

        graph = TaskGraph(2)
        a, b = graph.add_task([1, 2]), graph.add_task([2, 1])
        c = graph.add_task([1, 1])
        graph.add_edge(a, c, 1.0)
        graph.add_edge(b, c, 1.0)
        result = OnlineHDLTS().execute(graph)
        assert len(result.finish_times) == 4  # + pseudo entry


class TestNoise:
    def test_realized_makespan_differs_from_estimate(self, fig1):
        noise = gaussian_noise(fig1, 0.4, np.random.default_rng(3))
        result = OnlineHDLTS().execute(fig1, noise)
        assert result.makespan != pytest.approx(73.0)
        assert result.makespan > 0

    def test_replay_static_exact_equals_offline(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        replayed = replay_static(fig1, schedule)
        assert replayed.makespan == pytest.approx(73.0)

    def test_replay_and_online_use_same_realizations(self, fig1):
        """Memoized noise: both arms see identical (task, proc) draws."""
        rng = np.random.default_rng(5)
        noise = gaussian_noise(fig1, 0.3, rng)
        a = OnlineHDLTS().execute(fig1, noise).makespan
        b = OnlineHDLTS().execute(fig1, noise).makespan
        assert a == pytest.approx(b)


class TestFailures:
    def test_survives_single_failure(self, fig1):
        result = OnlineHDLTS().execute(
            fig1, failures=[FailStop(proc=2, at_time=20.0)]
        )
        assert set(result.finish_times) == set(fig1.tasks())
        assert 2 in result.dead_procs
        # nothing may finish on the dead CPU after its failure
        for record in result.records:
            if record.proc == 2 and not record.lost:
                assert record.finish <= 20.0 + 1e-9

    def test_lost_work_is_counted(self, fig1):
        result = OnlineHDLTS().execute(
            fig1, failures=[FailStop(proc=2, at_time=5.0)]
        )
        assert result.n_lost >= 1

    def test_failure_at_zero_excludes_cpu_entirely(self, fig1):
        result = OnlineHDLTS().execute(
            fig1, failures=[FailStop(proc=0, at_time=0.0)]
        )
        assert all(proc != 0 for proc in result.proc_of.values())

    def test_all_failures_raise(self, fig1):
        failures = [FailStop(p, 1.0) for p in range(3)]
        with pytest.raises(AllProcessorsFailed):
            OnlineHDLTS().execute(fig1, failures=failures)

    def test_makespan_degrades_gracefully(self):
        graph = make_random_graph(seed=9, v=80, n_procs=4)
        healthy = OnlineHDLTS().execute(graph).makespan
        crashed = OnlineHDLTS().execute(
            graph, failures=[FailStop(proc=0, at_time=healthy * 0.2)]
        )
        assert crashed.makespan < 4 * healthy  # bounded degradation
        assert set(crashed.finish_times) == set(graph.tasks())

    def test_duplication_can_be_disabled(self, fig1):
        result = OnlineHDLTS(duplicate_entry=False).execute(fig1)
        assert all(not r.duplicate for r in result.records)


class TestRobustness:
    def test_reports_are_consistent(self):
        from repro.dynamic.robustness import robustness_report
        from repro.generator import GeneratorConfig, generate_random_graph

        def make(rng):
            return generate_random_graph(GeneratorConfig(v=40, n_procs=3), rng)

        static, online = robustness_report(make, sigma=0.4, reps=8, seed=1)
        for report in (static, online):
            assert report.n == 8
            assert report.mean <= report.p95 <= report.worst + 1e-9
            assert 0 < report.robustness <= 1.0 + 1e-9
        assert static.arm == "static" and online.arm == "online"

    def test_zero_noise_arms_agree(self):
        from repro.dynamic.robustness import robustness_report
        from repro.generator import GeneratorConfig, generate_random_graph

        def make(rng):
            return generate_random_graph(GeneratorConfig(v=30, n_procs=3), rng)

        static, online = robustness_report(make, sigma=0.0, reps=4, seed=2)
        assert static.mean == pytest.approx(online.mean)
        assert static.std == pytest.approx(online.std)

    def test_invalid_args(self):
        from repro.dynamic.robustness import robustness_report

        with pytest.raises(ValueError):
            robustness_report(lambda rng: None, sigma=0.1, reps=1)
        with pytest.raises(ValueError):
            robustness_report(lambda rng: None, sigma=-1.0, reps=5)


class TestDuplicationWindowRegression:
    """Online entry duplication mirrors offline Algorithm 1's [0, W) window.

    Both graphs below are shrunk hypothesis counterexamples from
    ``test_online_exact_matches_offline``: the online executor used to
    append duplicates at Avail(k) instead of inserting them into the
    still-idle window at time zero, so it either missed a profitable
    duplicate or (with sub-epsilon slot starts) materialized one that
    offline correctly rejects.
    """

    @staticmethod
    def _build(n_procs, costs, edges):
        from repro.model.task_graph import TaskGraph

        graph = TaskGraph(n_procs)
        for row in costs:
            graph.add_task(row)
        for u, v, c in edges:
            graph.add_edge(u, v, c)
        return graph

    def test_missed_duplicate_in_idle_window(self):
        """Entry dup must run [0, W) on a CPU whose queue starts later."""
        from repro.dynamic.online import OnlineHDLTS

        graph = self._build(
            3,
            [
                [1.0, 1.0, 1.0],
                [1.0, 1.0, 0.0],
                [1.0, 2.0, 0.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ],
            [
                (0, 1, 1.0),
                (0, 2, 0.0),
                (0, 3, 0.0),
                (0, 4, 0.0),
                (1, 5, 0.0),
                (2, 5, 0.0),
                (3, 5, 0.0),
                (4, 5, 0.0),
            ],
        )
        offline = HDLTS().run(graph).makespan
        online = OnlineHDLTS().execute(graph).makespan
        assert offline == online == 1.0

    def test_duplicate_record_pinned_in_idle_window(self):
        """Pin the fix's mechanism, not just the makespan: the online
        run must materialize an entry duplicate over exactly [0, W) on a
        CPU other than the entry's primary CPU."""
        from repro.dynamic.online import OnlineHDLTS

        graph = self._build(
            3,
            [
                [1.0, 1.0, 1.0],
                [1.0, 1.0, 0.0],
                [1.0, 2.0, 0.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ],
            [
                (0, 1, 1.0),
                (0, 2, 0.0),
                (0, 3, 0.0),
                (0, 4, 0.0),
                (1, 5, 0.0),
                (2, 5, 0.0),
                (3, 5, 0.0),
                (4, 5, 0.0),
            ],
        )
        result = OnlineHDLTS().execute(graph)
        dups = [r for r in result.records if r.duplicate and not r.lost]
        assert dups, "the fixed executor must duplicate the entry task"
        assert {d.task for d in dups} == {0}
        primary_proc = result.proc_of[0]
        for dup in dups:
            assert dup.proc != primary_proc
            assert dup.start == 0.0
            assert dup.finish == pytest.approx(graph.cost(0, dup.proc))

    def test_regression_graphs_are_in_the_golden_corpus(self):
        """The same three shrunk graphs replay from tests/corpus/ too,
        as ``online_offline`` entries -- keep both in sync."""
        from pathlib import Path

        from repro.qa.corpus import read_corpus

        path = Path(__file__).parent.parent / "corpus" / "regressions.jsonl"
        ids = {e.id for e in read_corpus(path) if e.kind == "online_offline"}
        assert {
            "online-dup-window-1",
            "online-dup-window-2",
            "online-dup-window-3",
        } <= ids

    def test_zero_duration_slot_does_not_block_duplicate(self):
        """A zero-cost task at t=0 leaves the duplication window idle."""
        from repro.dynamic.online import OnlineHDLTS

        graph = self._build(
            2,
            [[0.5, 0.0], [0.0, 1.0], [0.0, 1.0], [0.0, 0.0]],
            [(0, 1, 0.0), (0, 2, 1.0), (1, 3, 0.0), (2, 3, 0.0)],
        )
        offline = HDLTS().run(graph).makespan
        online = OnlineHDLTS().execute(graph).makespan
        assert offline == online == 0.5

    def test_tiny_positive_slot_start_blocks_duplicate(self):
        """Slot starts below epsilon still gate the window exactly like
        the offline timeline's fits(0, duration)."""
        from repro.dynamic.online import OnlineHDLTS

        tiny = 1.386169986005746e-295
        graph = self._build(
            2,
            [
                [tiny, 1.0],
                [0.0, 0.0],
                [0.0, 0.0],
                [0.0, 0.0],
                [1.0, 0.0],
                [1.0, 0.0],
                [0.0, 0.0],
            ],
            [
                (0, 1, 0.0),
                (0, 2, 0.0),
                (0, 3, 0.0),
                (0, 4, 2.0),
                (1, 5, 2.0),
                (2, 6, 0.0),
                (3, 6, 0.0),
                (4, 6, 0.0),
                (5, 6, 0.0),
            ],
        )
        offline = HDLTS().run(graph).makespan
        online = OnlineHDLTS().execute(graph).makespan
        assert online == pytest.approx(offline)

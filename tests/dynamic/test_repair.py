"""Unit tests for checkpoint-and-replan failure recovery."""

import numpy as np
import pytest

from repro.core import HDLTS
from repro.dynamic.failures import FailStop
from repro.dynamic.noise import gaussian_noise
from repro.dynamic.repair import repair_after_failure
from tests.conftest import make_random_graph


@pytest.fixture
def plan(fig1):
    return HDLTS().run(fig1).schedule


class TestBasics:
    def test_all_tasks_complete(self, fig1, plan):
        result = repair_after_failure(fig1, plan, FailStop(proc=2, at_time=20))
        assert set(result.finish_times) == set(fig1.tasks())
        assert result.dead_procs == (2,)

    def test_nothing_finishes_on_dead_cpu_after_failure(self, fig1, plan):
        result = repair_after_failure(fig1, plan, FailStop(proc=2, at_time=20))
        for record in result.records:
            if record.proc == 2 and not record.lost:
                assert record.finish <= 20 + 1e-9

    def test_precedence_respected(self):
        graph = make_random_graph(seed=5, v=60, ccr=2.0, n_procs=4)
        plan = HDLTS().run(graph).schedule
        result = repair_after_failure(
            graph, plan, FailStop(proc=1, at_time=plan.makespan * 0.3)
        )
        entry = graph.entry_task
        for edge in graph.edges():
            if edge.src == entry:
                continue  # duplicates of the entry may serve locally
            src_fin = result.finish_times[edge.src]
            dst_start = result.finish_times[edge.dst] - graph.cost(
                edge.dst, result.proc_of[edge.dst]
            )
            comm = (
                0.0
                if result.proc_of[edge.src] == result.proc_of[edge.dst]
                else edge.cost
            )
            assert dst_start >= src_fin + comm - 1e-6

    def test_failure_after_completion_changes_nothing(self, fig1, plan):
        result = repair_after_failure(
            fig1, plan, FailStop(proc=2, at_time=10_000)
        )
        assert result.makespan == pytest.approx(plan.makespan)
        assert result.n_lost == 0

    def test_failure_at_zero_replans_everything(self, fig1, plan):
        result = repair_after_failure(fig1, plan, FailStop(proc=2, at_time=0.0))
        assert all(
            result.proc_of[t] != 2 for t in fig1.tasks()
        )

    def test_single_cpu_platform_rejected(self):
        graph = make_random_graph(seed=2, v=10, n_procs=1)
        plan = HDLTS().run(graph).schedule
        with pytest.raises(ValueError, match="survivor"):
            repair_after_failure(graph, plan, FailStop(proc=0, at_time=1.0))

    def test_out_of_range_cpu_rejected(self, fig1, plan):
        with pytest.raises(ValueError, match="outside"):
            repair_after_failure(fig1, plan, FailStop(proc=9, at_time=1.0))


class TestComparison:
    def test_repair_close_to_online(self):
        """Repair and online trade wins but stay within 2x of each
        other (both handle the failure gracefully)."""
        from repro.dynamic.online import OnlineHDLTS

        for seed in range(4):
            rng = np.random.default_rng(seed)
            graph = make_random_graph(seed=seed, v=60, n_procs=4, ccr=2.0)
            noise = gaussian_noise(graph, 0.2, rng)
            plan = HDLTS().run(graph).schedule
            failure = FailStop(proc=0, at_time=plan.makespan * 0.3)
            repaired = repair_after_failure(graph, plan, failure, noise)
            online = OnlineHDLTS().execute(graph, noise, [failure])
            ratio = repaired.makespan / online.makespan
            assert 0.5 < ratio < 2.0

"""The paper's comparative claims, continuously checked.

Each claim in :mod:`repro.experiments.claims` carries the verdict our
reproduction measured (EXPERIMENTS.md); these tests re-run the sweeps
and assert the measured status still holds -- in both directions, so a
code change that silently *fixes* a non-reproducing claim is flagged
just like one that breaks a reproducing claim.
"""

import pytest

from repro.experiments.claims import PAPER_CLAIMS, evaluate_claim


def test_claim_registry_covers_both_verdicts():
    verdicts = {c.expected for c in PAPER_CLAIMS}
    assert verdicts == {True, False}
    assert len({c.key for c in PAPER_CLAIMS}) == len(PAPER_CLAIMS)


def test_every_claim_names_a_real_figure():
    from repro.experiments.figures import FIGURES

    for claim in PAPER_CLAIMS:
        assert claim.figure in FIGURES, claim.key


@pytest.mark.parametrize(
    "claim", PAPER_CLAIMS, ids=[c.key for c in PAPER_CLAIMS]
)
def test_claim_verdict_is_stable(claim):
    assert evaluate_claim(claim, seed=0) == claim.expected, claim.statement

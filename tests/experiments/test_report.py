"""Unit tests for text report rendering."""

from repro.experiments.harness import run_sweep
from repro.experiments.report import (
    format_makespans,
    format_sweep,
    format_table,
    winners,
)
from tests.experiments.test_harness import tiny_sweep


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1  # rectangular


def test_format_sweep_contains_everything():
    result = run_sweep(tiny_sweep(), reps=2, seed=0)
    text = format_sweep(result)
    assert "tiny test sweep" in text
    assert "HDLTS" in text and "HEFT" in text
    assert "1.0" in text and "3.0" in text
    assert "best" in text


def test_format_sweep_precision():
    result = run_sweep(tiny_sweep(), reps=2, seed=0)
    text = format_sweep(result, precision=1)
    # with one decimal there should be no 4-decimal numbers
    assert not any(
        len(token.split(".")[-1]) == 4
        for token in text.split()
        if "." in token and token.replace(".", "").isdigit()
    )


def test_winners_lower_is_better_for_slr():
    result = run_sweep(tiny_sweep(), reps=3, seed=0)
    best = winners(result)
    for x, name in best.items():
        stats = result.stats[x]
        assert stats[name].mean == min(acc.mean for acc in stats.values())


def test_winners_higher_is_better_for_efficiency():
    result = run_sweep(tiny_sweep(metric="efficiency"), reps=3, seed=0)
    best = winners(result)
    for x, name in best.items():
        stats = result.stats[x]
        assert stats[name].mean == max(acc.mean for acc in stats.values())


def test_format_makespans_deltas():
    text = format_makespans({"HEFT": 80.0, "X": 5.0}, {"HEFT": 80.0})
    assert "+0" in text
    assert "X" in text  # unknown algorithms render without a paper column


def test_winners_for_makespan_metric_prefers_lower():
    from repro.experiments.harness import run_sweep

    sweep = tiny_sweep(metric="makespan")
    result = run_sweep(sweep, reps=2, seed=0)
    best = winners(result)
    for x, name in best.items():
        stats = result.stats[x]
        assert stats[name].mean == min(acc.mean for acc in stats.values())

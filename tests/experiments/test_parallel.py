"""Unit tests for the process-parallel sweep runner."""

import pytest

from repro.experiments.harness import run_sweep
from repro.experiments.parallel import run_sweep_parallel
from tests.experiments.test_harness import tiny_sweep


def test_parallel_matches_serial_bit_for_bit():
    serial = run_sweep(tiny_sweep(), reps=6, seed=3)
    parallel = run_sweep_parallel(tiny_sweep(), reps=6, seed=3, workers=3, chunk_size=2)
    for x in serial.definition.x_values:
        for name in serial.definition.schedulers:
            assert parallel.stats[x][name].mean == serial.stats[x][name].mean
            assert parallel.stats[x][name].std == pytest.approx(
                serial.stats[x][name].std
            )
            assert parallel.stats[x][name].n == serial.stats[x][name].n


def test_single_worker_falls_back_to_serial():
    result = run_sweep_parallel(tiny_sweep(), reps=2, seed=0, workers=1)
    assert all(
        result.stats[x]["HDLTS"].n == 2 for x in result.definition.x_values
    )


def test_chunk_size_does_not_change_results():
    a = run_sweep_parallel(tiny_sweep(), reps=5, seed=1, workers=2, chunk_size=1)
    b = run_sweep_parallel(tiny_sweep(), reps=5, seed=1, workers=2, chunk_size=4)
    assert a.series("HDLTS") == b.series("HDLTS")


def test_figure_definitions_survive_forking():
    """Closures in figure factories must work through fork inheritance."""
    from repro.experiments import get_figure

    result = run_sweep_parallel(get_figure("fig13"), reps=2, seed=0, workers=2)
    assert result.stats[1.0]["HDLTS"].n == 2


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        run_sweep_parallel(tiny_sweep(), reps=0)
    with pytest.raises(ValueError):
        run_sweep_parallel(tiny_sweep(), reps=1, workers=0)


def test_zero_chunk_size_rejected():
    with pytest.raises(ValueError, match="chunk_size"):
        run_sweep_parallel(tiny_sweep(), reps=2, workers=2, chunk_size=0)
    with pytest.raises(ValueError, match="chunk_size"):
        run_sweep_parallel(tiny_sweep(), reps=2, workers=2, chunk_size=-3)


def test_shared_pool_reused_across_sweeps_matches_serial():
    """Two sweeps through one sweep_pool equal their serial runs."""
    from repro.experiments import get_figure
    from repro.experiments.parallel import sweep_pool

    first, second = tiny_sweep(), get_figure("fig13")
    with sweep_pool([first, second], workers=2, start_method="fork") as pool:
        a = run_sweep_parallel(first, reps=3, seed=2, pool=pool)
        b = run_sweep_parallel(second, reps=2, seed=0, pool=pool)
    sa = run_sweep(first, reps=3, seed=2)
    sb = run_sweep(second, reps=2, seed=0)
    for result, serial in ((a, sa), (b, sb)):
        for x in serial.definition.x_values:
            for name in serial.definition.schedulers:
                assert result.stats[x][name].mean == serial.stats[x][name].mean
                assert result.stats[x][name].std == serial.stats[x][name].std
                assert result.stats[x][name].n == serial.stats[x][name].n


def test_shared_pool_rejects_unregistered_definition():
    from repro.experiments import get_figure
    from repro.experiments.parallel import sweep_pool

    with sweep_pool([tiny_sweep()], workers=2, start_method="fork") as pool:
        with pytest.raises(ValueError, match="not registered"):
            run_sweep_parallel(get_figure("fig13"), reps=2, pool=pool)


def test_validate_flag_propagates():
    run_sweep_parallel(tiny_sweep(), reps=2, seed=0, workers=2, validate=True)


class TestMetricsMerge:
    """Per-worker metric snapshots must merge to the serial totals."""

    @pytest.fixture(autouse=True)
    def _obs_enabled(self):
        from repro import obs

        obs.enable()
        try:
            with obs.scoped(merge_up=False):
                yield
        finally:
            obs.disable()

    def test_parallel_counters_bit_identical_to_serial(self):
        serial = run_sweep(tiny_sweep(), reps=4, seed=7)
        parallel = run_sweep_parallel(
            tiny_sweep(), reps=4, seed=7, workers=2, chunk_size=1
        )
        assert serial.metrics["counters"]
        assert parallel.metrics["counters"] == serial.metrics["counters"]

    def test_parallel_timer_counts_match_serial(self):
        serial = run_sweep(tiny_sweep(), reps=3, seed=1)
        parallel = run_sweep_parallel(
            tiny_sweep(), reps=3, seed=1, workers=3, chunk_size=1
        )
        serial_timers = serial.metrics["timers"]
        parallel_timers = parallel.metrics["timers"]
        for key in serial_timers:
            assert parallel_timers[key]["count"] == serial_timers[key]["count"]

    def test_parallel_records_chunk_gauges(self):
        # pinned to a real pool: the gauges describe the decomposition
        result = run_sweep_parallel(
            tiny_sweep(), reps=4, seed=0, workers=2, chunk_size=2,
            start_method="fork",
        )
        gauges = result.metrics["gauges"]
        assert gauges["sweep/workers"] == 2.0
        assert gauges["sweep/chunk_size"] == 2.0
        assert gauges["sweep/chunk_imbalance"] >= 1.0
        assert result.metrics["timers"]["sweep/chunk_wall"]["count"] == 4

    def test_serial_fallback_still_merges_metrics(self, monkeypatch):
        """No-fork platforms fall back to run_sweep with identical stats."""
        import multiprocessing

        def no_fork(method):
            raise ValueError("fork not available")

        monkeypatch.setattr(multiprocessing, "get_context", no_fork)
        fallback = run_sweep_parallel(tiny_sweep(), reps=3, seed=5, workers=4)
        serial = run_sweep(tiny_sweep(), reps=3, seed=5)
        assert fallback.metrics["counters"] == serial.metrics["counters"]
        for x in serial.definition.x_values:
            for name in serial.definition.schedulers:
                assert fallback.stats[x][name].mean == serial.stats[x][name].mean
                assert fallback.stats[x][name].std == serial.stats[x][name].std
                assert fallback.stats[x][name].n == serial.stats[x][name].n

"""Unit tests for the Table II factorial grid runner."""

import pytest

from repro.experiments.grid import (
    format_marginals,
    grid_sweep_definition,
    marginals_from_sweep,
    run_grid,
)
from repro.experiments.harness import run_sweep

_SMALL_GRID = {
    "v": (20, 40),
    "alpha": (1.0,),
    "density": (2,),
    "ccr": (1.0, 3.0),
    "n_procs": (3,),
    "w_dag": (50,),
    "beta": (1.0,),
}


class TestRunGrid:
    def test_full_small_grid(self):
        result = run_grid(
            grid=_SMALL_GRID, sample=None, reps=2, schedulers=("HDLTS", "HEFT")
        )
        assert result.n_configs == 4  # 2 x 2
        # each config x 2 reps lands in overall
        assert result.overall["HDLTS"].n == 8
        # marginals partition: v=20 bucket holds half the samples
        assert result.marginals["v"][20]["HDLTS"].n == 4

    def test_sampling_caps_config_count(self):
        result = run_grid(grid=_SMALL_GRID, sample=2, reps=1, schedulers=("HEFT",))
        assert result.n_configs == 2

    def test_deterministic(self):
        a = run_grid(grid=_SMALL_GRID, sample=3, reps=1, seed=5, schedulers=("HEFT",))
        b = run_grid(grid=_SMALL_GRID, sample=3, reps=1, seed=5, schedulers=("HEFT",))
        assert a.overall["HEFT"].mean == b.overall["HEFT"].mean

    def test_max_tasks_filters_sizes(self):
        result = run_grid(
            grid=dict(_SMALL_GRID, v=(20, 40, 100_000)),
            sample=None,
            reps=1,
            schedulers=("HEFT",),
            max_tasks=50,
        )
        assert set(result.marginals["v"]) == {20, 40}

    def test_max_tasks_too_small_rejected(self):
        with pytest.raises(ValueError, match="max_tasks"):
            run_grid(grid=_SMALL_GRID, max_tasks=5)

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            run_grid(metric="bogus", grid=_SMALL_GRID)

    def test_invalid_reps_rejected(self):
        with pytest.raises(ValueError):
            run_grid(grid=_SMALL_GRID, reps=0)

    def test_winner_is_lowest_slr(self):
        result = run_grid(
            grid=_SMALL_GRID, sample=None, reps=1, schedulers=("HDLTS", "HEFT")
        )
        winner = result.winner()
        loser = "HEFT" if winner == "HDLTS" else "HDLTS"
        assert result.overall[winner].mean <= result.overall[loser].mean

    def test_efficiency_metric(self):
        result = run_grid(
            metric="efficiency",
            grid=_SMALL_GRID,
            sample=2,
            reps=1,
            schedulers=("HEFT",),
        )
        assert 0 < result.overall["HEFT"].mean <= 1.0 + 1e-9


class TestFormat:
    def test_marginal_tables_render(self):
        result = run_grid(
            grid=_SMALL_GRID, sample=None, reps=1, schedulers=("HDLTS", "HEFT")
        )
        text = format_marginals(result, axes=["ccr", "v"])
        assert "overall winner" in text
        assert "ccr" in text and "3.0" in text
        assert "HDLTS" in text

    def test_all_axes_by_default(self):
        result = run_grid(grid=_SMALL_GRID, sample=2, reps=1, schedulers=("HEFT",))
        text = format_marginals(result)
        for axis in _SMALL_GRID:
            assert axis in text


class TestGridAsSweep:
    """The shardable form: grid_sweep_definition + marginals_from_sweep."""

    def test_definition_is_portable_and_samples_like_run_grid(self):
        definition = grid_sweep_definition(
            grid=_SMALL_GRID, sample=None, schedulers=("HDLTS", "HEFT")
        )
        assert definition.portable  # serializes into campaign manifests
        assert definition.graph.factory == "table2"
        assert definition.x_values == (0, 1, 2, 3)  # 2 x 2 configs
        configs = definition.graph.params["configs"]
        # the same sampling pass as run_grid: same seed, same configs
        assert sorted((c["v"], c["ccr"]) for c in configs) == [
            (20, 1.0), (20, 3.0), (40, 1.0), (40, 3.0)
        ]

    def test_roundtrip_matches_run_grid(self):
        """Sweep the definition, fold back: same marginals as the
        in-process grid (same n everywhere, means to ~1 ulp -- pairwise
        combination rounds differently than one-by-one folding)."""
        schedulers = ("HDLTS", "HEFT")
        direct = run_grid(
            grid=_SMALL_GRID, sample=None, reps=2, schedulers=schedulers
        )
        definition = grid_sweep_definition(
            grid=_SMALL_GRID, sample=None, schedulers=schedulers
        )
        folded = marginals_from_sweep(run_sweep(definition, reps=2, seed=0))

        assert folded.n_configs == direct.n_configs == 4
        for name in schedulers:
            a, b = direct.overall[name], folded.overall[name]
            assert a.n == b.n == 8
            assert b.mean == pytest.approx(a.mean, rel=1e-12)
            assert b.std == pytest.approx(a.std, rel=1e-9)
            assert (b.min, b.max) == (a.min, a.max)
        for axis, buckets in direct.marginals.items():
            assert set(folded.marginals[axis]) == set(buckets)
            for value, bucket in buckets.items():
                for name in schedulers:
                    other = folded.marginals[axis][value][name]
                    assert other.n == bucket[name].n
                    assert other.mean == pytest.approx(
                        bucket[name].mean, rel=1e-12
                    )

    def test_rejects_foreign_sweeps(self):
        from tests.experiments.test_harness import tiny_sweep

        result = run_sweep(tiny_sweep(), reps=1, seed=0)
        with pytest.raises(ValueError, match="table2"):
            marginals_from_sweep(result)

"""Checkpoint/resume and start-method parity tests for the sweep runner.

The contract under test: a sweep interrupted after k chunks and resumed
from its ledger is *bit-identical* to an uninterrupted serial run, and
so is a sweep run under any pool start method (fork, spawn, serial
in-process chunking).
"""

import pytest

from repro.experiments import get_figure
from repro.experiments.harness import run_sweep
from repro.experiments.parallel import run_sweep_parallel, sweep_pool
from repro.runtime.context import RunContext
from repro.runtime.session import ExperimentSession
from tests.experiments.test_harness import tiny_closure_sweep, tiny_sweep


def _assert_same_stats(result, serial):
    for x in serial.definition.x_values:
        for name in serial.definition.schedulers:
            assert result.stats[x][name].mean == serial.stats[x][name].mean
            assert result.stats[x][name].std == serial.stats[x][name].std
            assert result.stats[x][name].n == serial.stats[x][name].n


class _StopAfter(Exception):
    pass


def _interrupt_after(k):
    """A progress callback raising after ``k`` completed chunks."""
    seen = {"n": 0}

    def progress(done, total):
        seen["n"] += 1
        if seen["n"] >= k:
            raise _StopAfter()

    return progress


class TestResume:
    @pytest.mark.parametrize("kill_after", [1, 3, 5])
    def test_interrupted_run_resumes_bit_identically(self, tmp_path, kill_after):
        definition = tiny_sweep()
        context = RunContext(seed=3, workers=2, chunk_size=1)
        session = ExperimentSession.create(
            tmp_path / "run", context, [definition], reps=4
        )
        with pytest.raises(_StopAfter):
            run_sweep_parallel(
                definition, reps=4, seed=3, workers=2, chunk_size=1,
                progress=_interrupt_after(kill_after), session=session,
            )
        session.close()
        recorded = len(session.completed_chunks(definition.key))
        assert kill_after <= recorded < 8  # partial, durable ledger

        resumed_session = ExperimentSession.open(tmp_path / "run")
        live = {"n": 0}

        def count_progress(done, total):
            live["n"] += 1

        with resumed_session:
            resumed = run_sweep_parallel(
                definition, reps=4, seed=3, workers=2, chunk_size=1,
                progress=count_progress, session=resumed_session,
            )
        assert live["n"] == 8  # every chunk reported, replayed or live
        _assert_same_stats(resumed, run_sweep(definition, reps=4, seed=3))

    def test_fully_completed_run_replays_without_recompute(self, tmp_path):
        definition = tiny_sweep()
        context = RunContext(seed=1, chunk_size=2)
        session = ExperimentSession.create(
            tmp_path / "run", context, [definition], reps=4
        )
        with session:
            first = run_sweep_parallel(
                definition, reps=4, seed=1, workers=2, chunk_size=2,
                session=session,
            )
        replay_session = ExperimentSession.open(tmp_path / "run")

        def fail_factory(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("replay recomputed a chunk")

        with replay_session:
            replayed = run_sweep_parallel(
                SweepDefinitionProxy(definition, fail_factory), reps=4,
                seed=1, workers=1, chunk_size=2, session=replay_session,
            )
        _assert_same_stats(replayed, first)

    def test_serial_session_run_matches_parallel(self, tmp_path):
        definition = tiny_sweep()
        context = RunContext(seed=5)
        session = ExperimentSession.create(
            tmp_path / "run", context, [definition], reps=3
        )
        with session:
            serial = run_sweep_parallel(
                definition, reps=3, seed=5, workers=1, chunk_size=2,
                session=session,
            )
        _assert_same_stats(serial, run_sweep(definition, reps=3, seed=5))
        assert len(session.completed_chunks(definition.key)) == 4


class SweepDefinitionProxy:
    """A definition whose graph factory must never be called."""

    def __init__(self, definition, fail_factory):
        self._definition = definition
        self._fail = fail_factory

    def build_graph(self, x, rng):
        return self._fail(x, rng)

    def __getattr__(self, name):
        return getattr(self._definition, name)


class TestStartMethods:
    def test_spawn_matches_fork_and_serial(self):
        definition = tiny_sweep()
        serial = run_sweep(definition, reps=4, seed=2)
        fork = run_sweep_parallel(
            definition, reps=4, seed=2, workers=2, chunk_size=1,
            start_method="fork",
        )
        spawn = run_sweep_parallel(
            definition, reps=4, seed=2, workers=2, chunk_size=1,
            start_method="spawn",
        )
        _assert_same_stats(fork, serial)
        _assert_same_stats(spawn, serial)

    def test_serial_start_method_never_pools(self, monkeypatch):
        import multiprocessing

        def no_pools(method):
            raise AssertionError("a pool was created under 'serial'")

        monkeypatch.setattr(multiprocessing, "get_context", no_pools)
        definition = tiny_sweep()
        result = run_sweep_parallel(
            definition, reps=2, seed=0, workers=4, start_method="serial",
        )
        _assert_same_stats(result, run_sweep(definition, reps=2, seed=0))

    def test_closure_definitions_rejected_off_fork(self):
        with pytest.raises(ValueError, match="closure"):
            with sweep_pool(
                [tiny_closure_sweep()], workers=2, start_method="spawn"
            ):
                pass  # pragma: no cover

    def test_closure_definitions_still_work_under_fork(self):
        definition = tiny_closure_sweep()
        result = run_sweep_parallel(
            definition, reps=2, seed=0, workers=2, start_method="fork"
        )
        _assert_same_stats(result, run_sweep(definition, reps=2, seed=0))

    def test_invalid_start_method_rejected(self):
        with pytest.raises(ValueError, match="start_method"):
            run_sweep_parallel(
                tiny_sweep(), reps=2, workers=2, start_method="thread"
            )

    def test_context_start_method_drives_resolution(self):
        from repro.experiments.parallel import _resolve_start_method
        from repro.runtime.context import DEFAULT_CONTEXT

        assert (
            _resolve_start_method(None, DEFAULT_CONTEXT.with_(start_method="serial"))
            == "serial"
        )
        assert (
            _resolve_start_method("fork", DEFAULT_CONTEXT.with_(start_method="serial"))
            == "fork"
        )

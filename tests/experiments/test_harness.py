"""Unit tests for the sweep harness."""

import numpy as np
import pytest

from repro.experiments.graphspec import GraphSpec
from repro.experiments.harness import SweepDefinition, run_single_point, run_sweep
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph


def tiny_sweep(metric="slr", schedulers=("HDLTS", "HEFT")) -> SweepDefinition:
    """Two-point, two-scheduler sweep used across the experiment tests."""
    return SweepDefinition(
        key="tiny",
        title="tiny test sweep",
        x_label="CCR",
        x_values=(1.0, 3.0),
        metric=metric,
        graph=GraphSpec("random", {"axis": "ccr", "v": 20, "n_procs": 3}),
        schedulers=schedulers,
    )


def tiny_closure_sweep() -> SweepDefinition:
    """The legacy closure form of :func:`tiny_sweep` (fork-only)."""
    def make(ccr, rng):
        return generate_random_graph(
            GeneratorConfig(v=20, ccr=float(ccr), n_procs=3), rng
        )

    return SweepDefinition(
        key="tiny",
        title="tiny test sweep",
        x_label="CCR",
        x_values=(1.0, 3.0),
        metric="slr",
        make_graph=make,
        schedulers=("HDLTS", "HEFT"),
    )


class TestDefinition:
    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            tiny_sweep(metric="bogus")

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError, match="x value"):
            SweepDefinition(
                key="x",
                title="x",
                x_label="x",
                x_values=(),
                metric="slr",
                make_graph=lambda x, rng: None,
            )


class TestRun:
    def test_deterministic_for_seed(self):
        a = run_sweep(tiny_sweep(), reps=3, seed=42)
        b = run_sweep(tiny_sweep(), reps=3, seed=42)
        assert a.series("HDLTS") == b.series("HDLTS")

    def test_different_seeds_differ(self):
        a = run_sweep(tiny_sweep(), reps=3, seed=1)
        b = run_sweep(tiny_sweep(), reps=3, seed=2)
        assert a.series("HDLTS") != b.series("HDLTS")

    def test_counts_and_keys(self):
        result = run_sweep(tiny_sweep(), reps=4, seed=0)
        assert set(result.stats) == {1.0, 3.0}
        for x in (1.0, 3.0):
            assert set(result.stats[x]) == {"HDLTS", "HEFT"}
            assert all(acc.n == 4 for acc in result.stats[x].values())

    def test_validate_flag(self):
        run_sweep(tiny_sweep(), reps=2, seed=0, validate=True)

    def test_reps_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sweep(tiny_sweep(), reps=0)

    def test_progress_callback_called(self):
        messages = []
        run_sweep(tiny_sweep(), reps=1, seed=0, progress=messages.append)
        assert len(messages) == 2  # one per x point

    def test_as_rows_flat_records(self):
        result = run_sweep(tiny_sweep(), reps=2, seed=0)
        rows = result.as_rows()
        assert len(rows) == 4  # 2 x-values * 2 schedulers
        assert {"x", "x_label", "metric", "scheduler", "mean", "std", "n"} <= set(
            rows[0]
        )
        assert all(row["x_label"] == "CCR" for row in rows)
        assert all(row["metric"] == "slr" for row in rows)

    def test_closure_and_spec_forms_build_identical_graphs(self):
        """GraphSpec-built instances match the legacy closure's bit for bit."""
        spec, closure = tiny_sweep(), tiny_closure_sweep()
        for x in spec.x_values:
            a = spec.build_graph(x, np.random.default_rng([7, 0]))
            b = closure.build_graph(x, np.random.default_rng([7, 0]))
            assert np.array_equal(a.cost_matrix(), b.cost_matrix())
            assert list(a.edges()) == list(b.edges())

    def test_exactly_one_factory_form_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            SweepDefinition(
                key="x", title="x", x_label="x", x_values=(1,), metric="slr"
            )
        with pytest.raises(ValueError, match="exactly one"):
            SweepDefinition(
                key="x", title="x", x_label="x", x_values=(1,), metric="slr",
                make_graph=lambda x, rng: None,
                graph=GraphSpec("random", {"axis": "ccr"}),
            )

    def test_closure_definition_refuses_serialization(self):
        closure = tiny_closure_sweep()
        assert not closure.portable
        with pytest.raises(ValueError, match="closure"):
            closure.to_dict()

    def test_ablation_variant_names_coexist(self):
        """Registry names keep HDLTS ablation variants distinct."""
        sweep = tiny_sweep(schedulers=("HDLTS", "HDLTS-nodup"))
        result = run_sweep(sweep, reps=2, seed=0)
        assert set(result.stats[1.0]) == {"HDLTS", "HDLTS-nodup"}

    def test_single_point_runs_standalone(self):
        stats = run_single_point(tiny_sweep(), 1.0, reps=2, seed=0)
        assert stats["HDLTS"].n == 2

    def test_single_point_matches_sweep(self):
        sweep = run_sweep(tiny_sweep(), reps=3, seed=9)
        point = run_single_point(
            tiny_sweep(), 3.0, reps=3, seed=9, x_index=1
        )
        assert point["HDLTS"].mean == sweep.stats[3.0]["HDLTS"].mean

    def test_slr_values_at_least_one(self):
        result = run_sweep(tiny_sweep(), reps=3, seed=0)
        for x in result.definition.x_values:
            for acc in result.stats[x].values():
                assert acc.min >= 1.0 - 1e-9

    def test_efficiency_values_in_unit_interval(self):
        result = run_sweep(tiny_sweep(metric="efficiency"), reps=3, seed=0)
        for x in result.definition.x_values:
            for acc in result.stats[x].values():
                assert 0.0 < acc.max <= 1.0 + 1e-9

"""Unit tests for the per-figure experiment definitions."""

import numpy as np
import pytest

from repro.experiments.figures import FIGURES, get_figure, list_figures
from repro.experiments.harness import run_sweep

_EXPECTED_KEYS = {
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig10",
    "fig11",
    "fig13",
    "fig14",
}


def test_every_evaluation_figure_defined():
    assert set(FIGURES) == _EXPECTED_KEYS
    assert set(list_figures()) == _EXPECTED_KEYS


def test_unknown_figure_raises():
    with pytest.raises(KeyError, match="unknown figure"):
        get_figure("fig99")


def test_fig3_full_extends_task_axis():
    assert get_figure("fig3").x_values[-1] == 1000
    assert get_figure("fig3", full=True).x_values[-1] == 10000


def test_full_flag_rejected_elsewhere():
    with pytest.raises(TypeError):
        get_figure("fig2", full=True)


@pytest.mark.parametrize("key", sorted(_EXPECTED_KEYS))
def test_figure_graphs_materialize(key):
    """Each figure's factory produces a schedulable graph at every x."""
    definition = get_figure(key)
    rng = np.random.default_rng(0)
    for x in definition.x_values[:2]:  # first two points suffice here
        graph = definition.build_graph(x, rng)
        assert graph.n_tasks >= 1
        graph.normalized().topological_order()  # acyclic + normalizable


def test_figure_definitions_are_portable():
    """Every figure ships a declarative GraphSpec and round-trips."""
    import pickle

    from repro.experiments.harness import SweepDefinition

    for key in sorted(_EXPECTED_KEYS):
        definition = get_figure(key)
        assert definition.portable
        clone = pickle.loads(pickle.dumps(definition))
        assert clone == definition
        rebuilt = SweepDefinition.from_dict(definition.to_dict())
        assert rebuilt == definition


def test_paper_parameters_pinned():
    assert get_figure("fig2").x_values == (1.0, 2.0, 3.0, 4.0, 5.0)
    assert get_figure("fig4").x_values == (2, 4, 6, 8, 10)
    assert get_figure("fig6").x_values == (4, 8, 16, 32)
    assert "m=16" in get_figure("fig8").description
    assert "5 CPUs" in get_figure("fig10").description
    assert "CCR=3" in get_figure("fig11").description


def test_metrics_assigned_correctly():
    for key in ("fig2", "fig3", "fig6", "fig7", "fig10", "fig13"):
        assert get_figure(key).metric == "slr"
    for key in ("fig4", "fig8", "fig11", "fig14"):
        assert get_figure(key).metric == "efficiency"


def test_schedulers_are_the_paper_set():
    for key in _EXPECTED_KEYS:
        assert get_figure(key).schedulers == (
            "HDLTS",
            "HEFT",
            "PETS",
            "PEFT",
            "SDBATS",
        )


def test_small_fig13_sweep_runs_end_to_end():
    result = run_sweep(get_figure("fig13"), reps=2, seed=0, validate=True)
    assert all(result.stats[x]["HDLTS"].n == 2 for x in result.definition.x_values)

"""Unit tests for CSV export."""

import csv
import io

from repro.experiments.export import grid_to_csv, sweep_to_csv
from repro.experiments.grid import run_grid
from repro.experiments.harness import run_sweep
from tests.experiments.test_grid import _SMALL_GRID
from tests.experiments.test_harness import tiny_sweep


def test_sweep_csv_shape():
    result = run_sweep(tiny_sweep(), reps=2, seed=0)
    text = sweep_to_csv(result)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["figure", "CCR", "scheduler", "metric", "mean", "std", "n"]
    assert len(rows) == 1 + 2 * 2  # header + 2 x-values * 2 schedulers
    assert all(row[3] == "slr" for row in rows[1:])
    assert all(row[6] == "2" for row in rows[1:])


def test_sweep_csv_writes_file(tmp_path):
    result = run_sweep(tiny_sweep(), reps=1, seed=0)
    path = tmp_path / "sweep.csv"
    text = sweep_to_csv(result, path)
    assert path.read_text() == text


def test_grid_csv_contains_overall_and_marginals(tmp_path):
    result = run_grid(grid=_SMALL_GRID, sample=None, reps=1, schedulers=("HEFT",))
    path = tmp_path / "grid.csv"
    text = grid_to_csv(result, path)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "axis"
    axes = {row[0] for row in rows[1:]}
    assert "overall" in axes and "ccr" in axes and "v" in axes
    assert path.exists()


def test_csv_values_match_result():
    result = run_sweep(tiny_sweep(), reps=3, seed=1)
    rows = list(csv.reader(io.StringIO(sweep_to_csv(result))))[1:]
    for row in rows:
        x = float(row[1])
        assert float(row[4]) == round(result.stats[x][row[2]].mean, 6)

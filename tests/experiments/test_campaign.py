"""Campaign engine tests: spec, shards, crash-resume, exact merge.

The headline contracts: task enumeration is deterministic and stable
(the ids *are* the coordination mechanism), any shard can be killed
mid-write and resumed to a byte-identical store, and the streaming
merge is bit-identical to the serial harness -- the same accumulator
fields to the last ulp, not just close.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import get_figure
from repro.experiments.campaign import (
    CAMPAIGN_SCHEMA,
    CAMPAIGN_STATUS_SCHEMA,
    Campaign,
    campaign_status,
    merge,
    merged_table,
    run_shard,
    task_id,
    write_merged,
)
from repro.experiments.harness import run_sweep
from repro.experiments.report import format_sweep
from repro.io.columnar import scan_frames
from repro.runtime.context import RunContext
from repro.runtime.session import ExperimentSession
from tests.experiments.test_harness import tiny_closure_sweep, tiny_sweep


def _campaign(path, reps=6, n_shards=3, chunk_size=2, seed=3) -> Campaign:
    return Campaign.create(
        path,
        [tiny_sweep()],
        reps=reps,
        n_shards=n_shards,
        context=RunContext(seed=seed, chunk_size=chunk_size),
    )


def _run_all(campaign: Campaign) -> None:
    for shard in range(campaign.n_shards):
        report = run_shard(campaign, shard)
        assert report.complete


def _assert_bit_identical(result, serial):
    for x in serial.definition.x_values:
        for name in serial.definition.schedulers:
            a, b = result.stats[x][name], serial.stats[x][name]
            assert (a.n, a._mean, a._m2, a._min, a._max) == (
                b.n, b._mean, b._m2, b._min, b._max
            ), (x, name)


# ----------------------------------------------------------------------
# spec: manifest, task enumeration, shard partition
# ----------------------------------------------------------------------
def test_manifest_roundtrip(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    doc = json.loads((tmp_path / "camp" / "campaign.json").read_text())
    assert doc["schema"] == CAMPAIGN_SCHEMA

    reopened = Campaign.open(tmp_path / "camp")
    assert reopened.reps == campaign.reps
    assert reopened.n_shards == campaign.n_shards
    assert reopened.context == campaign.context
    assert reopened.created == campaign.created
    assert [d.key for d in reopened.definitions] == ["tiny"]
    # identical enumeration from the reopened spec
    assert [t.task_id for t in reopened.tasks()] == [
        t.task_id for t in campaign.tasks()
    ]


def test_create_refuses_clobber(tmp_path):
    _campaign(tmp_path / "camp")
    with pytest.raises(FileExistsError, match="already holds a campaign"):
        _campaign(tmp_path / "camp")


def test_spec_validation(tmp_path):
    context = RunContext()
    with pytest.raises(ValueError, match="reps"):
        Campaign(tmp_path, context, reps=0, n_shards=1,
                 definitions=[tiny_sweep()])
    with pytest.raises(ValueError, match="n_shards"):
        Campaign(tmp_path, context, reps=1, n_shards=0,
                 definitions=[tiny_sweep()])
    with pytest.raises(ValueError, match="at least one sweep"):
        Campaign(tmp_path, context, reps=1, n_shards=1, definitions=[])
    with pytest.raises(ValueError, match="duplicate sweep keys"):
        Campaign(tmp_path, context, reps=1, n_shards=1,
                 definitions=[tiny_sweep(), tiny_sweep()])
    # closures cannot be written to a manifest -- campaigns are
    # declarative by construction
    with pytest.raises(ValueError, match="GraphSpec"):
        Campaign(tmp_path, context, reps=1, n_shards=1,
                 definitions=[tiny_closure_sweep()])


def test_task_enumeration_and_partition(tmp_path):
    campaign = _campaign(tmp_path / "camp")  # 2 x points, 6 reps, chunk 2
    tasks = campaign.tasks()
    assert [t.task_id for t in tasks] == [
        "tiny:x000:r00000000-00000002",
        "tiny:x000:r00000002-00000004",
        "tiny:x000:r00000004-00000006",
        "tiny:x001:r00000000-00000002",
        "tiny:x001:r00000002-00000004",
        "tiny:x001:r00000004-00000006",
    ]
    assert task_id("tiny", 0, 0, 2) == tasks[0].task_id
    assert all(t.index == i for i, t in enumerate(tasks))
    assert all(t.reps == 2 for t in tasks)

    # round-robin partition: disjoint, exhaustive, every shard sees
    # every x point
    by_shard = [campaign.shard_tasks(s) for s in range(3)]
    assert sorted(
        t.task_id for shard in by_shard for t in shard
    ) == sorted(t.task_id for t in tasks)
    for shard, owned in enumerate(by_shard):
        assert [campaign.shard_of(t) for t in owned] == [shard] * len(owned)
        assert {t.x_index for t in owned} == {0, 1}
    with pytest.raises(ValueError, match="shard must be in"):
        campaign.shard_tasks(3)


# ----------------------------------------------------------------------
# execution + exact merge
# ----------------------------------------------------------------------
def test_merge_bit_identical_to_serial_harness(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    _run_all(campaign)
    results = merge(campaign)
    serial = run_sweep(tiny_sweep(), reps=6, seed=3)
    _assert_bit_identical(results["tiny"], serial)


def test_torn_tail_resume_is_byte_identical(tmp_path):
    """kill -9 mid-append: resume re-emits only the destroyed task and
    reproduces the uninterrupted shard file byte for byte."""
    campaign = _campaign(tmp_path / "camp")
    _run_all(campaign)
    store = campaign.shard_path(0)
    want = store.read_bytes()

    # tear the last frame, as a kill mid-write would
    store.write_bytes(want[:-5])
    report = run_shard(campaign, 0)
    assert (report.executed, report.replayed) == (1, 1)
    assert store.read_bytes() == want

    # and the merge still matches the serial harness exactly
    _assert_bit_identical(
        merge(campaign)["tiny"], run_sweep(tiny_sweep(), reps=6, seed=3)
    )


def test_run_shard_skips_completed_tasks(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    seen = []
    report = run_shard(campaign, 1, progress=lambda done, total: seen.append(done))
    assert (report.executed, report.replayed, report.total) == (2, 0, 2)
    assert seen == [1, 2]
    again = run_shard(campaign, 1)
    assert (again.executed, again.replayed) == (0, 2)
    assert again.complete


def test_run_shard_max_tasks_pauses_durably(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    paused = run_shard(campaign, 0, max_tasks=1)
    assert (paused.executed, paused.replayed) == (1, 0)
    assert not paused.complete
    resumed = run_shard(campaign, 0)
    assert (resumed.executed, resumed.replayed) == (1, 1)
    assert resumed.complete


def test_merge_strict_names_missing_work(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    run_shard(campaign, 0)  # 2 of 6 tasks
    with pytest.raises(ValueError, match=r"4 of 6 tasks .*tiny:x000"):
        merge(campaign)

    # the partial preview folds whatever exists, in rep order
    partial = merge(campaign, strict=False)["tiny"]
    for x in tiny_sweep().x_values:
        for name in tiny_sweep().schedulers:
            assert partial.stats[x][name].n == 2  # one chunk per x


def test_merge_rejects_violated_partition(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    run_shard(campaign, 0)
    # the same tasks landing in two shard stores means the partition
    # broke (e.g. two processes ran the same shard id concurrently)
    campaign.shard_path(1).write_bytes(campaign.shard_path(0).read_bytes())
    with pytest.raises(ValueError, match="partition was violated"):
        merge(campaign, strict=False)


def test_merged_table_and_export(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    _run_all(campaign)
    results = merge(campaign)

    table = merged_table(results)
    assert len(table["x"]) == 4  # 2 x points x 2 schedulers
    assert set(table["scheduler"]) == {"HDLTS", "HEFT"}
    assert (table["n"] == 6).all()
    assert np.isfinite(table["mean"]).all()
    serial = run_sweep(tiny_sweep(), reps=6, seed=3)
    row = (table["x"] == 1.0) & (table["scheduler"] == "HDLTS")
    assert table["mean"][row][0] == serial.stats[1.0]["HDLTS"].mean

    out = write_merged(campaign, results)
    assert out == campaign.path / "merged.npz"
    loaded = np.load(out, allow_pickle=False)
    np.testing.assert_array_equal(loaded["mean"], table["mean"])

    # zero-sample lanes of a partial merge land as NaN, not a crash
    empty = _campaign(tmp_path / "empty")
    table = merged_table(merge(empty, strict=False))
    assert np.isnan(table["mean"]).all() and (table["n"] == 0).all()


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------
def test_campaign_status_counts_and_stragglers(tmp_path):
    campaign = _campaign(tmp_path / "camp")
    run_shard(campaign, 0, max_tasks=1)

    doc = campaign_status(campaign.path)
    assert doc["schema"] == CAMPAIGN_STATUS_SCHEMA
    assert not doc["complete"]
    assert (doc["tasks_done"], doc["tasks_total"]) == (1, 6)
    assert (doc["rows_done"], doc["rows_total"]) == (2, 12)
    assert doc["n_shards"] == 3
    shard0, shard1, _ = doc["shards"]
    assert shard0["started"] and not shard0["complete"]
    assert shard0["tasks_done"] == 1 and shard0["bytes"] > 0
    assert not shard1["started"] and shard1["tasks_done"] == 0
    assert doc["stragglers"] == []  # evidence is fresh

    # an incomplete, started shard with stale evidence is a straggler;
    # untouched shards are just "not started", never stragglers
    import time as _time

    stale = campaign_status(campaign.path, now=_time.time() + 60.0)
    assert stale["stragglers"] == [0]

    _run_all(campaign)
    done = campaign_status(campaign.path)
    assert done["complete"] and done["stragglers"] == []
    assert all(s["complete"] for s in done["shards"])
    assert done["sweeps"][0]["rows_done"] == 12


def test_status_document_and_top_dispatch_on_dir_kind(tmp_path):
    """`repro status`/`repro top` work on run dirs *and* campaign dirs:
    status_document picks the right schema, format_status the right
    renderer."""
    from repro.runtime.telemetry import format_status, status_document, watch

    campaign = _campaign(tmp_path / "camp")
    run_shard(campaign, 0, max_tasks=1)

    doc = status_document(campaign.path)
    assert doc["schema"] == CAMPAIGN_STATUS_SCHEMA
    frame = format_status(doc)
    assert "campaign" in frame
    assert "shard" in frame
    assert "tiny" in frame
    assert "(not started)" in frame  # shards 1 and 2 untouched
    assert watch(campaign.path, once=True) == 0

    _run_all(campaign)
    frame = format_status(status_document(campaign.path))
    assert "complete" in frame and "done" in frame


def test_session_open_points_campaign_dirs_at_the_campaign_cli(tmp_path):
    _campaign(tmp_path / "camp")
    with pytest.raises(FileNotFoundError, match="campaign directory"):
        ExperimentSession.open(tmp_path / "camp")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_campaign_end_to_end(tmp_path, capsys):
    camp = str(tmp_path / "camp")
    assert main([
        "campaign", "init", camp, "--figures", "fig2",
        "--reps", "4", "--shards", "2", "--chunk-size", "2", "--seed", "0",
    ]) == 0
    assert "2 shard(s)" in capsys.readouterr().out

    assert main(["campaign", "tasks", camp, "--shard", "0"]) == 0
    ids = capsys.readouterr().out.strip().splitlines()
    assert ids and all(":r" in line for line in ids)

    for shard in ("0", "1"):
        assert main(["campaign", "run-shard", camp, shard]) == 0
    capsys.readouterr()

    assert main(["campaign", "status", camp, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == CAMPAIGN_STATUS_SCHEMA
    assert doc["complete"] and doc["tasks_done"] == doc["tasks_total"]

    # `campaign merge` stdout is exactly the serial figure tables --
    # the contract CI's diff-against-`repro figure` smoke relies on
    assert main(["campaign", "merge", camp]) == 0
    merged_out = capsys.readouterr().out
    serial = run_sweep(get_figure("fig2"), reps=4, seed=0)
    assert merged_out == format_sweep(serial) + "\n"
    assert (tmp_path / "camp" / "merged.npz").exists()


def test_cli_campaign_partial_merge_and_errors(tmp_path, capsys):
    camp = str(tmp_path / "camp")
    assert main([
        "campaign", "init", camp, "--figures", "fig2",
        "--reps", "4", "--shards", "2", "--chunk-size", "2", "--seed", "0",
    ]) == 0
    assert main(["campaign", "run-shard", camp, "0"]) == 0
    capsys.readouterr()

    # strict merge refuses; --partial summarizes coverage instead
    assert main(["campaign", "merge", camp]) == 2
    err = capsys.readouterr().err
    assert "5 of 10 tasks" in err
    assert main(["campaign", "merge", camp, "--partial"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out

    # a campaign dir handed to run-dir commands gets a pointed error
    assert main(["resume", camp]) == 2
    err = capsys.readouterr().err
    assert "campaign" in err

"""Tests for the Table I / Fig. 1 experiment wrappers.

(The cell-by-cell golden trace test lives in
``tests/core/test_table1_trace.py``; this file covers the experiment
entry points and the in-text makespan claims.)
"""

import pytest

from repro.experiments.table1 import (
    PAPER_FIG1_MAKESPANS,
    fig1_makespans,
    table1_trace,
)


def test_trace_has_ten_steps_and_ends_at_73():
    trace = table1_trace()
    assert len(trace) == 10
    assert trace[-1].finish == pytest.approx(73.0)


def test_exact_published_makespans():
    """HDLTS, HEFT and SDBATS reproduce the published values exactly."""
    measured = fig1_makespans()
    assert measured["HDLTS"] == pytest.approx(73.0)
    assert measured["HEFT"] == pytest.approx(80.0)
    assert measured["SDBATS"] == pytest.approx(74.0)


def test_all_published_makespans_within_two_units():
    """PETS/PEFT differ by at most one unit (tie-break interpretation)."""
    measured = fig1_makespans()
    for name, published in PAPER_FIG1_MAKESPANS.items():
        assert abs(measured[name] - published) <= 2.0, name


def test_hdlts_beats_every_baseline_on_fig1():
    measured = fig1_makespans()
    assert measured["HDLTS"] == min(measured.values())


def test_custom_scheduler_subset():
    measured = fig1_makespans(["HEFT", "CPOP"])
    assert set(measured) == {"HEFT", "CPOP"}
    assert measured["CPOP"] == pytest.approx(86.0)

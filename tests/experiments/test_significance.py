"""Unit tests for paired scheduler significance testing."""

import pytest

from repro.experiments.significance import compare_schedulers
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph


def _factory(**overrides):
    config = GeneratorConfig(v=40, n_procs=3, **overrides)

    def make(rng):
        return generate_random_graph(config, rng)

    return make


def test_self_comparison_is_a_tie():
    result = compare_schedulers(_factory(), "HEFT", "HEFT", reps=6)
    assert result.mean_diff == 0.0
    assert result.p_value == 1.0
    assert result.ties == 6
    assert not result.significant


def test_known_gap_is_significant():
    """HEFT vs the clustering strawman: a large, real gap."""
    result = compare_schedulers(_factory(ccr=2.0), "HEFT", "LC", reps=12)
    assert result.mean_diff < 0  # HEFT lower SLR
    assert result.significant
    assert result.wins_a > result.wins_b


def test_ci_brackets_mean():
    result = compare_schedulers(_factory(), "HDLTS", "HEFT", reps=10)
    assert result.ci_low <= result.mean_diff <= result.ci_high
    assert result.n == 10
    assert result.wins_a + result.wins_b + result.ties == 10


def test_format_is_readable():
    result = compare_schedulers(_factory(), "HDLTS", "HEFT", reps=6)
    text = result.format()
    assert "HDLTS vs HEFT" in text and "p=" in text


def test_too_few_reps_rejected():
    with pytest.raises(ValueError):
        compare_schedulers(_factory(), "HDLTS", "HEFT", reps=2)


def test_custom_metric():
    result = compare_schedulers(
        _factory(),
        "HDLTS",
        "HEFT",
        reps=6,
        metric=lambda graph, makespan: makespan,
    )
    assert result.mean_a > 0 and result.mean_b > 0

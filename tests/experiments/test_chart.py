"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments.chart import ascii_chart
from repro.experiments.harness import run_sweep
from tests.experiments.test_harness import tiny_sweep


@pytest.fixture(scope="module")
def result():
    return run_sweep(tiny_sweep(), reps=3, seed=0)


def test_chart_structure(result):
    text = ascii_chart(result, height=10)
    lines = text.splitlines()
    assert len(lines) == 10 + 3  # rows + axis + ticks + legend
    assert "+" in lines[10]  # axis line
    assert "CCR" in lines[-1]
    assert "H=HDLTS" in lines[-1] and "E=HEFT" in lines[-1]


def test_y_labels_are_min_max(result):
    text = ascii_chart(result)
    lines = text.splitlines()
    values = [
        result.stats[x][n].mean
        for x in result.definition.x_values
        for n in result.definition.schedulers
    ]
    assert f"{max(values):.3g}" in lines[0]
    assert f"{min(values):.3g}" in text


def test_every_series_plotted(result):
    """Each (x, scheduler) pair contributes one mark or a collision."""
    text = ascii_chart(result, height=30)  # tall: fewer collisions
    body = "\n".join(text.splitlines()[:30])
    marks = sum(body.count(c) for c in "HE*")
    assert marks >= len(result.definition.x_values)  # at least per column


def test_flat_series_does_not_crash():
    from repro.experiments.harness import SweepDefinition, SweepResult
    from repro.metrics.stats import RunningStats

    definition = SweepDefinition(
        key="flat",
        title="flat",
        x_label="x",
        x_values=(1, 2),
        metric="slr",
        make_graph=lambda x, rng: None,
        schedulers=("A-ONE", "B-TWO"),
    )
    result = SweepResult(definition=definition, reps=1, seed=0)
    for x in (1, 2):
        result.stats[x] = {"A-ONE": RunningStats(), "B-TWO": RunningStats()}
        result.stats[x]["A-ONE"].add(2.0)
        result.stats[x]["B-TWO"].add(2.0)
    text = ascii_chart(result)
    assert "A=A-ONE" in text


def test_invalid_height_rejected(result):
    with pytest.raises(ValueError):
        ascii_chart(result, height=2)


def test_cli_chart_flag(capsys):
    from repro.cli import main

    assert main(["figure", "fig13", "--reps", "1", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "H=HDLTS" in out

"""Documentation quality gates.

Deliverable contract: every public module, class and function carries a
docstring, and the README's quickstart snippet stays truthful.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

_SRC = pathlib.Path(repro.__file__).parent


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages([str(_SRC)], prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", _all_modules())
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if member.__module__ != module_name and inspect.getmodule(
                member
            ) is not module:
                continue  # re-export; checked at its home module
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(member):
                for attr_name, attr in vars(member).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not (
                        attr.__doc__ and attr.__doc__.strip()
                    ):
                        undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module_name}: {undocumented}"


def test_every_package_has_tests():
    """Each repro subpackage has a corresponding tests/ directory or a
    top-level test module exercising it."""
    tests_root = _SRC.parent.parent / "tests"
    covered = {p.name for p in tests_root.iterdir() if p.is_dir()}
    covered |= {"cli"}  # tests/test_cli.py
    for package in _SRC.iterdir():
        if package.is_dir() and (package / "__init__.py").exists():
            assert package.name in covered, f"no tests/ dir for {package.name}"


def test_readme_mentions_every_package():
    readme = (_SRC.parent.parent / "README.md").read_text()
    for package in _SRC.iterdir():
        if package.is_dir() and (package / "__init__.py").exists():
            assert f"{package.name}/" in readme, package.name

"""Differential suite: compiled layer vs the object-graph code paths.

``use_compiled(False)`` reproduces the pre-compiled paths exactly
(per-run ``cost_matrix()`` copies, scalar rank recursions, dict-based
parent walks).  Every scheduler in the registry must produce a
bit-identical schedule -- same CPU, same start, same finish for every
task copy -- with the layer on and off, on:

* the paper's Fig. 1 worked example,
* every realized ``workflows/`` topology,
* Hypothesis-driven random DAGs across sizes / CCRs / shapes,

and the dispatching rank functions must return bit-identical vectors.
At the top of the stack, a whole ``run_sweep`` must agree between arms:
identical means, stds, replication counts and observability counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import SCHEDULER_FACTORIES, make_scheduler
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.model.compiled import use_compiled
from repro.model.ranking import downward_rank, oct_rank, optimistic_cost_table, upward_rank
from repro.model.task_graph import TaskGraph
from repro.workflows import (
    cybershake_workflow,
    epigenomics_workflow,
    fft_workflow,
    gaussian_elimination_workflow,
    molecular_dynamics_workflow,
    montage_workflow,
    paper_example_graph,
)
from tests.test_engine_differential import schedule_signature

# long-running property suite: marked slow (still in the default run,
# deselect explicitly with -m 'not slow' for a quick loop)
pytestmark = pytest.mark.slow

ALL_SCHEDULERS = tuple(SCHEDULER_FACTORIES)
#: GA runs a full evolutionary loop per build (~0.5 s); it gets its own
#: scaled-down Hypothesis case below instead of riding the broad sweep.
FAST_SCHEDULERS = tuple(n for n in ALL_SCHEDULERS if n != "GA")


def random_graph(seed: int, v: int = 40, ccr: float = 1.0, alpha: float = 1.0):
    config = GeneratorConfig(v=v, ccr=ccr, alpha=alpha)
    return generate_random_graph(config, np.random.default_rng(seed)).normalized()


def workflow_graphs():
    rng = lambda: np.random.default_rng(42)
    return [
        ("fft", fft_workflow(4, 3, rng()).normalized()),
        ("montage", montage_workflow(20, 3, rng()).normalized()),
        ("molecular", molecular_dynamics_workflow(3, rng()).normalized()),
        ("gaussian", gaussian_elimination_workflow(5, 3, rng()).normalized()),
        ("epigenomics", epigenomics_workflow(4, 3, rng()).normalized()),
        ("cybershake", cybershake_workflow(2, 2, 3, rng()).normalized()),
    ]


def assert_arms_identical(name: str, graph: TaskGraph, label: str = "") -> None:
    """Build with the compiled layer on and off; demand exact equality."""
    with use_compiled(True):
        compiled_arm = make_scheduler(name).build_schedule(graph)
    with use_compiled(False):
        object_arm = make_scheduler(name).build_schedule(graph)
    context = f"{name} on {label or 'graph'}"
    assert schedule_signature(compiled_arm) == schedule_signature(
        object_arm
    ), context
    assert compiled_arm.makespan == object_arm.makespan, context


# --------------------------------------------------------------------------
# rank vectors
# --------------------------------------------------------------------------
class TestRankVectors:
    """The dispatching rank functions agree between arms bit for bit."""

    def graphs(self):
        yield "fig1", paper_example_graph()
        for label, graph in workflow_graphs():
            yield label, graph
        for seed in range(3):
            yield f"random-{seed}", random_graph(
                seed, v=35 + 20 * seed, ccr=(0.5, 3.0)[seed % 2]
            )

    @pytest.mark.parametrize(
        "func", [upward_rank, downward_rank, optimistic_cost_table, oct_rank]
    )
    def test_bit_identical_between_arms(self, func):
        for label, graph in self.graphs():
            with use_compiled(True):
                compiled_arm = func(graph)
            with use_compiled(False):
                object_arm = func(graph)
            assert np.array_equal(compiled_arm, object_arm), (
                f"{func.__name__} on {label}"
            )

    def test_custom_weights_between_arms(self):
        from repro.model.attributes import std_execution_times

        for label, graph in self.graphs():
            weights = np.asarray(std_execution_times(graph))
            with use_compiled(True):
                compiled_arm = upward_rank(graph, weights)
            with use_compiled(False):
                object_arm = upward_rank(graph, weights)
            assert np.array_equal(compiled_arm, object_arm), label


# --------------------------------------------------------------------------
# every registry scheduler on the canonical graphs
# --------------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_fig1_schedules_identical(name):
    assert_arms_identical(name, paper_example_graph(), "fig1")


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_workflow_schedules_identical(name):
    for label, graph in workflow_graphs():
        assert_arms_identical(name, graph, label)


@pytest.mark.parametrize("name", FAST_SCHEDULERS)
def test_random_dag_schedules_identical(name):
    for seed, v, ccr in ((0, 30, 0.5), (1, 60, 1.0), (2, 100, 3.0)):
        assert_arms_identical(name, random_graph(seed, v, ccr), f"v={v}")


# --------------------------------------------------------------------------
# Hypothesis: random DAGs across the generator's parameter space
# --------------------------------------------------------------------------
@given(
    seed=st.integers(0, 2**31 - 1),
    v=st.integers(5, 45),
    ccr=st.sampled_from([0.1, 0.5, 1.0, 3.0, 10.0]),
    alpha=st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=12, deadline=None)
def test_hypothesis_dags_all_fast_schedulers(seed, v, ccr, alpha):
    graph = random_graph(seed, v, ccr, alpha)
    for name in FAST_SCHEDULERS:
        assert_arms_identical(name, graph, f"seed={seed} v={v}")


@given(seed=st.integers(0, 2**31 - 1), v=st.integers(5, 15))
@settings(max_examples=3, deadline=None)
def test_hypothesis_dags_ga(seed, v):
    assert_arms_identical("GA", random_graph(seed, v), f"seed={seed} v={v}")


# --------------------------------------------------------------------------
# whole-sweep equivalence (stats + observability counters)
# --------------------------------------------------------------------------
class TestSweepEquivalence:
    def run_arms(self, reps=3, seed=11):
        from repro.experiments.harness import run_sweep
        from tests.experiments.test_harness import tiny_sweep

        with use_compiled(True):
            compiled_arm = run_sweep(tiny_sweep(), reps=reps, seed=seed)
        with use_compiled(False):
            object_arm = run_sweep(tiny_sweep(), reps=reps, seed=seed)
        return compiled_arm, object_arm

    def test_sweep_stats_bit_identical(self):
        compiled_arm, object_arm = self.run_arms()
        for x in object_arm.definition.x_values:
            for name in object_arm.definition.schedulers:
                a = compiled_arm.stats[x][name]
                b = object_arm.stats[x][name]
                assert a.mean == b.mean
                assert a.std == b.std
                assert a.n == b.n

    def test_sweep_counters_bit_identical(self):
        from repro import obs

        obs.enable()
        try:
            with obs.scoped(merge_up=False):
                compiled_arm, object_arm = self.run_arms()
        finally:
            obs.disable()
        assert object_arm.metrics["counters"]
        assert (
            compiled_arm.metrics["counters"] == object_arm.metrics["counters"]
        )

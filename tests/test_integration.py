"""Cross-module integration tests.

These exercise the full pipeline -- generator/workflow -> normalization
-> scheduler -> validator -> simulator -> metrics -> report -- the way
the benchmarks and the CLI do, plus the public API surface and the
runnable examples.
"""

import importlib.util
import pathlib
import sys

import numpy as np
import pytest

import repro
from repro.baselines.registry import SCHEDULER_FACTORIES
from repro.metrics import evaluate
from repro.schedule import ScheduleSimulator, validate_schedule
from tests.conftest import make_random_graph

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_readme_quickstart_snippet(self):
        result = repro.HDLTS(record_trace=True).run(repro.paper_example_graph())
        assert result.makespan == 73.0


class TestFullPipeline:
    @pytest.mark.parametrize("name", sorted(SCHEDULER_FACTORIES))
    def test_generator_to_metrics_for_every_scheduler(self, name):
        graph = make_random_graph(seed=31, v=70, ccr=2.0, n_procs=5)
        result = SCHEDULER_FACTORIES[name]().run(graph)
        validate_schedule(graph, result.schedule)
        sim = ScheduleSimulator(graph).run(result.schedule)
        assert sim.makespan <= result.makespan + 1e-6
        report = evaluate(graph, result.schedule)
        assert report.slr >= 1.0 - 1e-9
        assert 0 < report.efficiency <= 1.0 + 1e-9

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            ("fft_workflow", {"m": 8, "n_procs": 3}),
            ("montage_workflow", {"n_tasks": 50, "n_procs": 5}),
            ("molecular_dynamics_workflow", {"n_procs": 4}),
            ("gaussian_elimination_workflow", {"m": 5, "n_procs": 3}),
        ],
    )
    def test_every_workflow_full_pipeline(self, builder, kwargs):
        from repro import workflows

        graph = getattr(workflows, builder)(
            rng=np.random.default_rng(0), ccr=2.0, **kwargs
        )
        normalized = graph.normalized()
        for name in ("HDLTS", "HEFT"):
            result = SCHEDULER_FACTORIES[name]().run(normalized)
            validate_schedule(normalized, result.schedule)

    def test_paired_comparison_shares_instances(self):
        """The harness gives every scheduler the same graphs: SLR gaps
        between algorithms on a point are then decision gaps, not
        sampling noise.  Spot-check by recomputing one point by hand."""
        from repro.experiments import get_figure, run_sweep

        definition = get_figure("fig13")
        result = run_sweep(definition, reps=3, seed=7)
        accs = {name: [] for name in definition.schedulers}
        for rep in range(3):
            rng = np.random.default_rng([7, 0, rep])  # per-rep stream
            graph = definition.build_graph(definition.x_values[0], rng)
            graph = graph.normalized() if len(graph.entry_tasks()) != 1 else graph
            for name in definition.schedulers:
                run = SCHEDULER_FACTORIES[name]().run(graph)
                from repro.metrics.metrics import slr

                accs[name].append(slr(graph, run.makespan))
        for name in definition.schedulers:
            assert result.stats[definition.x_values[0]][name].mean == pytest.approx(
                float(np.mean(accs[name]))
            )


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "fft_pipeline.py",
            "montage_mosaic.py",
            "fault_tolerant_cluster.py",
            "custom_platform.py",
            "analyze_and_export.py",
            "capacity_planning.py",
        ],
    )
    def test_example_runs(self, script, capsys):
        """Each example's main() completes without error."""
        path = _EXAMPLES / script
        spec = importlib.util.spec_from_file_location(script[:-3], path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[script[:-3]] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(script[:-3], None)
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report

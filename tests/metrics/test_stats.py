"""Unit tests for the Welford accumulator and summaries."""

import math

import numpy as np
import pytest

from repro.metrics.stats import RunningStats, summarize


class TestRunningStats:
    def test_matches_numpy(self, rng):
        samples = rng.normal(10.0, 3.0, size=500)
        stats = RunningStats()
        stats.extend(samples)
        assert stats.n == 500
        assert stats.mean == pytest.approx(samples.mean())
        assert stats.std == pytest.approx(samples.std(ddof=1))
        assert stats.min == samples.min()
        assert stats.max == samples.max()

    def test_single_sample(self):
        stats = RunningStats()
        stats.add(7.0)
        assert stats.mean == 7.0
        assert stats.variance == 0.0
        assert stats.stderr == 0.0

    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(ValueError, match="no samples"):
            stats.mean
        with pytest.raises(ValueError):
            stats.variance
        with pytest.raises(ValueError):
            stats.min

    def test_nonfinite_rejected(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            stats.add(float("nan"))
        with pytest.raises(ValueError):
            stats.add(float("inf"))

    def test_stderr_shrinks_with_n(self, rng):
        small, large = RunningStats(), RunningStats()
        small.extend(rng.normal(size=10))
        large.extend(rng.normal(size=1000))
        assert large.stderr < small.stderr

    def test_confidence_interval_contains_mean(self, rng):
        stats = RunningStats()
        stats.extend(rng.normal(5.0, 1.0, size=100))
        low, high = stats.confidence_interval()
        assert low < stats.mean < high
        assert high - low == pytest.approx(2 * 1.96 * stats.stderr)

    def test_numerical_stability_large_offset(self):
        """Welford survives a huge common offset (naive sums would not)."""
        stats = RunningStats()
        base = 1e12
        for value in (base + 1, base + 2, base + 3):
            stats.add(value)
        assert stats.variance == pytest.approx(1.0)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.n == 3
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(1.0)
        assert summary.min == 1.0 and summary.max == 3.0
        assert summary.stderr == pytest.approx(1.0 / math.sqrt(3))

    def test_generator_input(self):
        summary = summarize(float(x) for x in range(10))
        assert summary.n == 10

"""Unit tests for SLR / speedup / efficiency (Eqs. 10-12)."""

import pytest

from repro.core import HDLTS
from repro.metrics.metrics import (
    MetricReport,
    efficiency,
    evaluate,
    sequential_time,
    slr,
    speedup,
)
from repro.model.task_graph import TaskGraph
from tests.conftest import make_random_graph


class TestSequentialTime:
    def test_fig1_best_single_cpu(self, fig1):
        # column sums: P1 = 127, P2 = 130, P3 = 133 -> 127 on P1
        assert sequential_time(fig1) == pytest.approx(127.0)

    def test_empty_graph(self):
        assert sequential_time(TaskGraph(2)) == 0.0


class TestSLR:
    def test_fig1_hdlts(self, fig1):
        assert slr(fig1, 73.0) == pytest.approx(73.0 / 41.0)

    def test_always_at_least_one(self):
        for seed in range(5):
            graph = make_random_graph(seed=seed, v=50, ccr=2.0)
            makespan = HDLTS().run(graph).makespan
            assert slr(graph, makespan) >= 1.0 - 1e-9

    def test_negative_makespan_rejected(self, fig1):
        with pytest.raises(ValueError):
            slr(fig1, -1.0)

    def test_zero_bound_graph_rejected(self):
        graph = TaskGraph(2)
        graph.add_task([0, 0])
        with pytest.raises(ValueError, match="undefined"):
            slr(graph, 1.0)


class TestSpeedupEfficiency:
    def test_fig1_hdlts_speedup(self, fig1):
        assert speedup(fig1, 73.0) == pytest.approx(127.0 / 73.0)

    def test_efficiency_is_speedup_per_cpu(self, fig1):
        assert efficiency(fig1, 73.0) == pytest.approx(
            speedup(fig1, 73.0) / 3.0
        )

    def test_single_cpu_efficiency_is_one(self):
        graph = make_random_graph(seed=4, v=30, n_procs=1)
        makespan = HDLTS().run(graph).makespan
        assert efficiency(graph, makespan) == pytest.approx(1.0)

    def test_speedup_bounded_by_cpu_count(self):
        """Speedup can never exceed p (work conservation)."""
        for seed in range(4):
            graph = make_random_graph(seed=seed, v=60)
            makespan = HDLTS().run(graph).makespan
            assert speedup(graph, makespan) <= graph.n_procs + 1e-9

    def test_zero_makespan_rejected(self, fig1):
        with pytest.raises(ValueError):
            speedup(fig1, 0.0)


class TestEvaluate:
    def test_report_consistency(self, fig1):
        schedule = HDLTS().run(fig1).schedule
        report = evaluate(fig1, schedule)
        assert isinstance(report, MetricReport)
        assert report.makespan == pytest.approx(73.0)
        assert report.slr == pytest.approx(slr(fig1, 73.0))
        assert report.efficiency == pytest.approx(report.speedup / 3.0)

    def test_as_dict(self, fig1):
        report = evaluate(fig1, HDLTS().run(fig1).schedule)
        d = report.as_dict()
        assert set(d) == {"makespan", "slr", "speedup", "efficiency"}

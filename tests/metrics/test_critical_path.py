"""Unit tests for critical-path lower bounds."""

import pytest

from repro.metrics.critical_path import (
    cp_min_lower_bound,
    critical_path_mean,
    critical_path_min,
)
from repro.model.task_graph import TaskGraph
from tests.conftest import make_random_graph


def test_fig1_cp_min(fig1):
    """Minimum-cost chain of the Fig. 1 graph.

    With node weights min_p W: (9, 13, 11, 8, 10, 9, 7, 5, 12, 7) the
    longest chain is T1-T2-T9-T10 = 9 + 13 + 12 + 7 = 41.
    """
    length, path = critical_path_min(fig1)
    assert length == pytest.approx(41.0)
    assert path == [0, 1, 8, 9]


def test_bound_is_a_true_lower_bound(fig1):
    """Every scheduler's makespan dominates the CP_MIN bound."""
    from repro.baselines.registry import SCHEDULER_FACTORIES

    bound = cp_min_lower_bound(fig1)
    for name, factory in SCHEDULER_FACTORIES.items():
        assert factory().run(fig1).makespan >= bound - 1e-9, name


def test_bound_on_random_graphs():
    from repro.core import HDLTS

    for seed in range(5):
        graph = make_random_graph(seed=seed, v=60, ccr=3.0)
        assert HDLTS().run(graph).makespan >= cp_min_lower_bound(graph) - 1e-9


def test_mean_cp_includes_communication(fig1):
    """The mean-cost CP of Fig. 1 (Topcuoglu): T1-T2/T4-..., length with
    comm included must exceed the comm-free min bound."""
    mean_len, mean_path = critical_path_mean(fig1)
    assert mean_len > cp_min_lower_bound(fig1)
    assert mean_path[0] == 0 and mean_path[-1] == 9


def test_single_task_graph():
    graph = TaskGraph(2)
    graph.add_task([4, 6])
    length, path = critical_path_min(graph)
    assert length == 4.0
    assert path == [0]


def test_chain_graph(chain):
    length, path = critical_path_min(chain)
    assert path == [0, 1, 2, 3]
    assert length == pytest.approx(5 + 2 + 4 + 1)


def test_parallel_tasks_pick_heaviest():
    graph = TaskGraph(1)
    graph.add_task([3])
    graph.add_task([10])
    graph.add_task([5])
    length, path = critical_path_min(graph)
    assert length == 10.0 and path == [1]

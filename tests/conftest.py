"""Shared fixtures: canonical graphs and deterministic RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.task_graph import TaskGraph
from repro.workflows.paper_example import paper_example_graph


def pytest_addoption(parser):
    parser.addoption(
        "--start-method",
        action="store",
        default=None,
        choices=["fork", "spawn", "forkserver", "serial"],
        help="default worker-pool start method for parallel sweep tests "
        "(adopted into the session's RunContext)",
    )


def pytest_configure(config):
    method = config.getoption("--start-method", default=None)
    if method:
        from repro.runtime.context import DEFAULT_CONTEXT, adopt

        adopt(DEFAULT_CONTEXT.with_(start_method=method))


@pytest.fixture
def fig1() -> TaskGraph:
    """The paper's Fig. 1 graph (10 tasks, 3 CPUs)."""
    return paper_example_graph()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def diamond() -> TaskGraph:
    """A -> (B, C) -> D on 2 CPUs; the smallest interesting DAG."""
    graph = TaskGraph(2)
    a = graph.add_task([2, 4], name="A")
    b = graph.add_task([3, 1], name="B")
    c = graph.add_task([4, 4], name="C")
    d = graph.add_task([2, 2], name="D")
    graph.add_edge(a, b, 5.0)
    graph.add_edge(a, c, 1.0)
    graph.add_edge(b, d, 2.0)
    graph.add_edge(c, d, 3.0)
    return graph


@pytest.fixture
def chain() -> TaskGraph:
    """A 4-task chain on 3 CPUs with nontrivial comm costs."""
    graph = TaskGraph(3)
    prev = graph.add_task([5, 6, 7], name="C0")
    for i, costs in enumerate(([3, 2, 9], [4, 4, 4], [1, 8, 2]), start=1):
        task = graph.add_task(costs, name=f"C{i}")
        graph.add_edge(prev, task, 2.0 * i)
        prev = task
    return graph


@pytest.fixture
def single_task() -> TaskGraph:
    graph = TaskGraph(2)
    graph.add_task([3, 5], name="only")
    return graph


def make_random_graph(seed: int = 0, v: int = 60, **overrides) -> TaskGraph:
    """Helper used by many tests: a normalized random instance."""
    from repro.generator import GeneratorConfig, generate_random_graph

    config = GeneratorConfig(v=v, **overrides)
    graph = generate_random_graph(config, np.random.default_rng(seed))
    return graph.normalized()

"""Fidelity matrix: every scheduler x a grid of platform/workload shapes.

One parametrized test per (scheduler, configuration) pair.  Each cell
runs the full verification stack -- feasibility validator plus
discrete-event replay -- so a regression in any scheduler on any shape
(single CPU, two CPUs, communication-free, communication-dominated,
homogeneous, extreme heterogeneity) is pinned to a named cell.

The slow search-based schedulers (GA, LA-HEFT) run a reduced grid.
"""

import numpy as np
import pytest

from repro.baselines.registry import SCHEDULER_FACTORIES
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.metrics.critical_path import cp_min_lower_bound
from repro.schedule.simulator import ScheduleSimulator
from repro.schedule.validation import validate_schedule

_CONFIGS = {
    "single-cpu": GeneratorConfig(v=20, n_procs=1),
    "two-cpu": GeneratorConfig(v=25, n_procs=2),
    "comm-free": GeneratorConfig(v=25, n_procs=3, ccr=0.0),
    "comm-heavy": GeneratorConfig(v=25, n_procs=3, ccr=5.0),
    "homogeneous": GeneratorConfig(v=25, n_procs=3, beta=0.0),
    "max-hetero": GeneratorConfig(v=25, n_procs=3, beta=2.0),
    "tall": GeneratorConfig(v=30, n_procs=3, alpha=0.5, single_entry=True),
    "flat": GeneratorConfig(v=30, n_procs=3, alpha=2.5),
}

_FAST = [
    name for name in SCHEDULER_FACTORIES if name not in ("GA", "LA-HEFT")
]
_SLOW = ["GA", "LA-HEFT"]
_SLOW_CONFIGS = ("two-cpu", "comm-heavy")


def _graph(key: str):
    graph = generate_random_graph(
        _CONFIGS[key], np.random.default_rng(hash(key) % 2**32)
    )
    if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
        graph = graph.normalized()
    return graph


def _check(name: str, key: str) -> None:
    graph = _graph(key)
    result = SCHEDULER_FACTORIES[name]().run(graph)
    assert result.schedule.is_complete(), (name, key)
    validate_schedule(graph, result.schedule)
    replay = ScheduleSimulator(graph).run(result.schedule)
    assert replay.makespan <= result.makespan + 1e-6, (name, key)
    assert result.makespan >= cp_min_lower_bound(graph) - 1e-6, (name, key)


@pytest.mark.parametrize("config_key", sorted(_CONFIGS))
@pytest.mark.parametrize("name", sorted(_FAST))
def test_scheduler_on_shape(name, config_key):
    _check(name, config_key)


@pytest.mark.parametrize("config_key", _SLOW_CONFIGS)
@pytest.mark.parametrize("name", _SLOW)
def test_slow_scheduler_on_shape(name, config_key):
    _check(name, config_key)

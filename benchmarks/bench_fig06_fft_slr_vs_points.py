"""Regenerate the paper's fig6 (fft slr vs points) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig6 = figure_bench("fig6")

"""Stream-arena throughput bench: jobs per wall-clock second.

Materializes Poisson job streams from one :class:`StreamSpec` and
measures how many jobs the arena pushes through per second of scheduler
wall time for each policy, alongside the fleet metrics the streaming
docs headline (mean sojourn, utilization).  A generous jobs/sec floor
guards against the arena's event loop regressing to quadratic behavior;
the tighter wall-time gate is the perf-smoke factor check against
``BENCH_baseline.json``.
"""

import time

import numpy as np

from conftest import bench_reps, emit
from repro.experiments.graphspec import GraphSpec
from repro.experiments.report import format_table
from repro.metrics.stats import RunningStats
from repro.stream import run_stream
from repro.stream.arrivals import ArrivalSpec
from repro.stream.metrics import STREAM_METRICS
from repro.stream.spec import DEFAULT_POLICIES, StreamSpec

_SPEC = StreamSpec(
    job=GraphSpec("random", {"axis": "v", "n_procs": 4, "ccr": 1.0}),
    arrival=ArrivalSpec("poisson", rate=0.02),
    n_jobs=30,
    job_x=20,
    noise={"kind": "gaussian", "sigma": 0.2},
)

#: deliberately loose -- catches order-of-magnitude regressions only
_FLOOR_JOBS_PER_S = 10.0


def test_stream_throughput(benchmark):
    reps = bench_reps()
    jobs_per_s = {name: RunningStats() for name in DEFAULT_POLICIES}
    sojourn = {name: RunningStats() for name in DEFAULT_POLICIES}
    utilization = {name: RunningStats() for name in DEFAULT_POLICIES}
    for rep in range(reps):
        rng = np.random.default_rng([47, rep])
        instance = _SPEC.build(0.02, rng)
        for name in DEFAULT_POLICIES:
            started = time.perf_counter()
            result = run_stream(instance, name)
            wall = time.perf_counter() - started
            jobs_per_s[name].add(len(result.finished_jobs()) / wall)
            sojourn[name].add(STREAM_METRICS["sojourn"](result))
            utilization[name].add(STREAM_METRICS["utilization"](result))
    rows = [
        [
            name,
            f"{jobs_per_s[name].mean:.0f}",
            f"{sojourn[name].mean:.1f}",
            f"{utilization[name].mean:.2f}",
        ]
        for name in DEFAULT_POLICIES
    ]
    emit(
        "stream_throughput",
        f"Poisson stream, {_SPEC.n_jobs} jobs of v={_SPEC.job_x} on 4 CPUs "
        f"(reps={reps}, sigma=0.2):\n"
        + format_table(
            ["policy", "jobs/s", "mean sojourn", "utilization"], rows
        ),
    )
    floor = min(stats.mean for stats in jobs_per_s.values())
    assert floor > _FLOOR_JOBS_PER_S, (
        f"stream arena throughput collapsed: {floor:.1f} jobs/s"
    )

    instance = _SPEC.build(0.02, np.random.default_rng([47, 0]))
    benchmark(lambda: run_stream(instance, "OnlineHDLTS"))

"""Columnar campaign merge vs the row-wise JSONL ledger path.

The campaign engine's merge (:func:`repro.experiments.campaign.merge`)
streams fixed-dtype record batches out of the shard stores and folds
them into Welford accumulators with the scalar recurrence vectorized
across every ``(x point, scheduler)`` lane at once.  The incumbent it
replaces is the ``chunks.jsonl`` replay path (``parallel._collect``):
``json.loads`` per ledger line, then one Python-level
``RunningStats.add`` per metric value.

This bench builds a 10^5-replication campaign's worth of synthetic
results -- the *same* values landed both ways: a JSONL ledger in chunk
submission order and columnar shard stores partitioned across four
shards -- and measures end-to-end ingest+aggregate wall time for both
paths, disk to final per-point statistics:

* **correctness first** -- the columnar merge must reproduce the
  row-wise fold bit for bit (n, mean, m2, min, max per lane; JSON
  floats round-trip exactly, and the vectorized fold performs the
  scalar op sequence per lane);
* **throughput second** -- alternating row-wise/columnar rounds so
  cache and frequency drift hit both arms alike; best-of per arm.

Acceptance (the ISSUE 8 perf headline): the columnar merge is >=10x
the row-wise path, and the 10^5-instance demo merges in seconds.
"""

import json
import time

import numpy as np

from conftest import emit
from repro.baselines.registry import PAPER_SET
from repro.experiments.campaign import Campaign, merge
from repro.experiments.graphspec import GraphSpec
from repro.experiments.harness import SweepDefinition
from repro.io.columnar import ColumnarWriter, record_dtype, records_as_matrix
from repro.metrics.stats import RunningStats
from repro.runtime.context import DEFAULT_CONTEXT

#: conservative CI floor for the paired ingest+aggregate measure
SPEEDUP_FLOOR = 10.0

#: the 10^5-instance demo must merge to final stats in seconds
DEMO_WALL_CEILING_S = 10.0

#: alternating row-wise/columnar rounds; min per arm is the measure
ROUNDS = 3

#: campaign shape: N_X x REPS = 100,000 replications, K metric columns
N_X = 50
REPS = 2_000
CHUNK = 100
SHARDS = 4
SCHEDULERS = PAPER_SET  # k = 5 columns per replication


def _definition():
    """A wide sweep: 50 x points, the paper's 5-scheduler set."""
    return SweepDefinition(
        key="mergebench",
        title="campaign merge throughput workload",
        x_label="CCR",
        x_values=tuple(float(i) for i in range(1, N_X + 1)),
        metric="slr",
        schedulers=SCHEDULERS,
        graph=GraphSpec("random", {"axis": "ccr", "single_entry": True}),
    )


def _populate(campaign, ledger_path):
    """Land one synthetic result set both ways: JSONL ledger + shards.

    Values are drawn once per x point and written in the campaign's
    own task order, so both stores hold byte-equal floats in the same
    fold order (JSON round-trips doubles exactly via ``repr``).
    """
    definition = campaign.definitions[0]
    rng = np.random.default_rng(7)
    values = rng.random(
        (len(definition.x_values), campaign.reps, len(SCHEDULERS))
    ) + 1.0
    dtype = record_dtype(list(SCHEDULERS))
    per_shard = {s: [] for s in range(campaign.n_shards)}
    with open(ledger_path, "w", encoding="utf-8") as ledger:
        for task in campaign.tasks():
            block = values[task.x_index, task.rep_lo:task.rep_hi]
            ledger.write(
                json.dumps(
                    {
                        "sweep": task.sweep,
                        "x_index": task.x_index,
                        "x": task.x,
                        "rep_lo": task.rep_lo,
                        "rep_hi": task.rep_hi,
                        "values": [
                            dict(zip(SCHEDULERS, map(float, row)))
                            for row in block
                        ],
                        "metrics": {},
                        "wall": 0.0,
                    }
                )
                + "\n"
            )
            per_shard[campaign.shard_of(task)].append((task, block))
    for shard, items in per_shard.items():
        with ColumnarWriter.create(
            campaign.shard_path(shard), campaign.groups()
        ) as writer:
            for task, block in items:
                records = np.empty(len(block), dtype=dtype)
                records_as_matrix(records)[:] = block
                writer.write_batch(
                    {
                        "group": task.sweep,
                        "task": task.task_id,
                        "x_index": task.x_index,
                        "rep_lo": task.rep_lo,
                        "rep_hi": task.rep_hi,
                    },
                    records,
                )


def _rowwise_merge(ledger_path, definition):
    """The incumbent path: JSONL replay into per-value Python Welford.

    Mirrors ``parallel._collect``'s ledger replay exactly -- one
    ``json.loads`` per chunk line (submission order), then
    ``RunningStats.add`` per metric value.
    """
    stats = {
        x: {name: RunningStats() for name in definition.schedulers}
        for x in definition.x_values
    }
    with open(ledger_path, "r", encoding="utf-8") as fh:
        for line in fh:
            row = json.loads(line)
            accumulators = stats[definition.x_values[row["x_index"]]]
            for rep_values in row["values"]:
                for name, value in rep_values.items():
                    accumulators[name].add(value)
    return stats


def _assert_identical(rowwise, results, definition):
    """Both paths must agree bit for bit on every accumulator field."""
    merged = results[definition.key]
    for x in definition.x_values:
        for name in definition.schedulers:
            a, b = rowwise[x][name], merged.stats[x][name]
            assert (a.n, a._mean, a._m2, a._min, a._max) == (
                b.n, b._mean, b._m2, b._min, b._max
            ), (x, name)


def test_campaign_merge_throughput(benchmark, tmp_path):
    definition = _definition()
    campaign = Campaign.create(
        tmp_path / "camp",
        [definition],
        reps=REPS,
        n_shards=SHARDS,
        context=DEFAULT_CONTEXT.with_(seed=0, chunk_size=CHUNK),
    )
    ledger_path = tmp_path / "chunks.jsonl"
    _populate(campaign, ledger_path)
    rows = N_X * REPS

    # correctness first: bit-identical statistics from both paths
    _assert_identical(
        _rowwise_merge(ledger_path, definition), merge(campaign), definition
    )

    # throughput: disk -> final stats, alternating arms each round
    timings = []
    t_row, t_col = [], []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        _rowwise_merge(ledger_path, definition)
        mid = time.perf_counter()
        merge(campaign)
        ended = time.perf_counter()
        t_row.append(mid - started)
        t_col.append(ended - mid)
        timings.append((mid - started, ended - mid))

    best_row, best_col = min(t_row), min(t_col)
    speedup = best_row / best_col if best_col > 0 else float("inf")
    lines = [
        "campaign merge throughput, row-wise JSONL vs columnar "
        "(bit-identical statistics):",
        f"  workload             : {rows} replications "
        f"({N_X} x points x {REPS} reps x {len(SCHEDULERS)} schedulers, "
        f"chunk {CHUNK}, {SHARDS} shards)",
    ]
    for i, (r, c) in enumerate(timings):
        lines.append(
            f"  round {i}: row-wise {r * 1e3:7.0f} ms   "
            f"columnar {c * 1e3:7.0f} ms   ratio {r / c:.2f}x"
        )
    lines.append(
        f"  best-of-{ROUNDS}: row-wise {best_row * 1e3:.0f} ms "
        f"({rows / best_row / 1e6:.2f} Mrows/s)   "
        f"columnar {best_col * 1e3:.0f} ms "
        f"({rows / best_col / 1e6:.2f} Mrows/s)   "
        f"speedup {speedup:.2f}x"
    )
    emit("campaign_merge", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar merge only {speedup:.2f}x faster than the row-wise "
        f"ledger path; the bar is {SPEEDUP_FLOOR}x"
    )
    assert best_col <= DEMO_WALL_CEILING_S, (
        f"10^5-instance merge took {best_col:.1f}s; "
        f"the bar is {DEMO_WALL_CEILING_S}s"
    )

    # a small campaign for the pytest-benchmark timing series
    small_def = SweepDefinition(
        key="mergebench",
        title="campaign merge (small)",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        schedulers=SCHEDULERS,
        graph=GraphSpec("random", {"axis": "ccr", "single_entry": True}),
    )
    small = Campaign.create(
        tmp_path / "small",
        [small_def],
        reps=200,
        n_shards=2,
        context=DEFAULT_CONTEXT.with_(seed=0, chunk_size=CHUNK),
    )
    _populate(small, tmp_path / "small-chunks.jsonl")
    benchmark(lambda: merge(small))

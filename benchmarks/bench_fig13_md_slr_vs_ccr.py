"""Regenerate the paper's fig13 (md slr vs ccr) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig13 = figure_bench("fig13")

"""Regenerate the paper's fig8 (fft efficiency) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig8 = figure_bench("fig8")

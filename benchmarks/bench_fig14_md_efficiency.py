"""Regenerate the paper's fig14 (md efficiency) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig14 = figure_bench("fig14")

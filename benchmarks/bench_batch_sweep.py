"""Batched multi-DAG kernel vs the scalar per-instance path.

The batch kernel (:mod:`repro.core.batch`) packs a replication batch of
same-shape compiled instances into ``(batch, n, p)`` struct-of-arrays
tensors and runs the batchable scheduler set as one array program per
batch instead of one Python dispatch per instance.  This bench pairs
the two paths on a fig2-style shape-uniform sweep (100-task random
DAGs, fixed structure per x point via the ``random-fixed`` factory, the
batchable paper schedulers):

* **correctness first** -- ``run_sweep`` under ``batch="auto"`` vs
  ``batch="off"`` must report bit-identical means/stds and identical
  observability counters, and the raw kernel makespans must equal the
  scalar schedulers' bit for bit;
* **throughput second** -- both arms consume the *same* prebuilt
  compiled instances (instance construction is identical input work,
  not what the kernel optimizes), alternating scalar-then-batched each
  round so CPU-frequency drift hits both arms alike; the per-arm
  minimum over rounds is the measure.  Both arms run warm: the scalar
  arm's per-``CompiledGraph`` rank caches persist across rounds, so the
  batched arm symmetrically reuses one packed :class:`CompiledBatch`
  (packing is a one-time ~2 ms cost, charged to the warmup round).

Acceptance: >=3x replication-batch throughput (conservative CI floor;
the measured speedup on a warm machine is >=5x at 512 lanes).
"""

import time

import numpy as np

from conftest import bench_reps, emit
from repro import obs
from repro.baselines.registry import make_scheduler
from repro.core.batch import CompiledBatch, run_batch
from repro.experiments.graphspec import GraphSpec
from repro.experiments.harness import (
    SweepDefinition,
    _build_instance,
    run_sweep,
)
from repro.model.compiled import compile_graph
from repro.runtime.context import activate, current_context

#: conservative CI floor for the paired throughput measure
SPEEDUP_FLOOR = 3.0

#: alternating scalar/batched rounds; min per arm is the measure
ROUNDS = 4

#: replication-batch width for the throughput measure (one x point)
BATCH_LANES = 512

#: the batchable paper set (PETS/CPOP always take the scalar path)
SCHEDULERS = ("HDLTS", "HEFT", "PEFT", "SDBATS")


def _definition(x_values=(1.0, 3.0, 5.0)):
    """Fig. 2-style sweep with one DAG shape per x point."""
    return SweepDefinition(
        key="batch_sweep",
        title="batched vs scalar paired sweep",
        x_label="CCR",
        x_values=x_values,
        metric="slr",
        schedulers=SCHEDULERS,
        graph=GraphSpec(
            "random-fixed",
            {"axis": "ccr", "single_entry": True, "structure_seed": 11},
        ),
    )


def _run_arm(definition, reps, batch):
    with activate(current_context().with_(batch=batch)):
        return run_sweep(definition, reps=reps, seed=0)


def _assert_outputs_identical(definition, reps):
    """Both harness arms must agree bit for bit: stats AND counters."""
    with obs.enabled_scope(True):
        with obs.scoped(merge_up=False) as reg_off:
            off = _run_arm(definition, reps, "off")
        with obs.scoped(merge_up=False) as reg_auto:
            auto = _run_arm(definition, reps, "auto")
    for x in definition.x_values:
        for name in definition.schedulers:
            a, b = off.stats[x][name], auto.stats[x][name]
            assert a.mean == b.mean, (x, name)
            assert a.std == b.std, (x, name)
            assert a.n == b.n, (x, name)
    counters_off = reg_off.snapshot()["counters"]
    counters_auto = reg_auto.snapshot()["counters"]
    assert counters_off == counters_auto


def _build_batch(definition, x, lanes):
    """One replication batch of compiled same-shape instances."""
    graphs = [
        _build_instance(definition, x, 0, rep, seed=0) for rep in range(lanes)
    ]
    return graphs, [compile_graph(g) for g in graphs]


def _scalar_round(graphs):
    out = {}
    for name in SCHEDULERS:
        scheduler = make_scheduler(name)
        out[name] = [scheduler.run(g).makespan for g in graphs]
    return out


def _batched_round(batch):
    return {name: run_batch(batch, name).makespans for name in SCHEDULERS}


def test_batch_sweep_throughput(benchmark):
    definition = _definition()
    reps = bench_reps()

    # correctness first: the harness arms agree bit for bit
    _assert_outputs_identical(definition, reps)

    # raw kernel bit-identity on the throughput workload itself
    graphs, compiled = _build_batch(definition, 3.0, BATCH_LANES)
    batch = CompiledBatch(compiled)
    scalar_spans = _scalar_round(graphs)
    batched_spans = _batched_round(batch)
    for name in SCHEDULERS:
        assert np.array_equal(
            np.asarray(scalar_spans[name]), batched_spans[name]
        ), name

    # throughput: identical prebuilt instances, alternating pairs
    rows = []
    t_scalar, t_batched = [], []
    with obs.enabled_scope(False):
        _scalar_round(graphs)  # warm both arms (rank caches, packing)
        _batched_round(batch)
        for _ in range(ROUNDS):
            started = time.perf_counter()
            _scalar_round(graphs)
            mid = time.perf_counter()
            _batched_round(batch)
            ended = time.perf_counter()
            t_scalar.append(mid - started)
            t_batched.append(ended - mid)
            rows.append((mid - started, ended - mid))

    best_s, best_b = min(t_scalar), min(t_batched)
    speedup = best_s / best_b if best_b > 0 else float("inf")
    lines = [
        "replication-batch scheduling throughput, scalar vs batched "
        "(bit-identical schedules):",
        f"  batch width          : {BATCH_LANES} lanes "
        f"(100-task random DAGs, CCR 3.0, schedulers {', '.join(SCHEDULERS)})",
    ]
    for i, (s, b) in enumerate(rows):
        lines.append(
            f"  round {i}: scalar {s * 1e3:7.0f} ms   "
            f"batched {b * 1e3:7.0f} ms   ratio {s / b:.2f}x"
        )
    lines.append(
        f"  best-of-{ROUNDS}: scalar {best_s * 1e3:.0f} ms "
        f"({1e3 * best_s / BATCH_LANES:.2f} ms/rep)   "
        f"batched {best_b * 1e3:.0f} ms "
        f"({1e3 * best_b / BATCH_LANES:.2f} ms/rep)   "
        f"speedup {speedup:.2f}x"
    )
    emit("batch_sweep", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"batched kernel only {speedup:.2f}x faster on the paired "
        f"replication batch; the bar is {SPEEDUP_FLOOR}x"
    )

    small = CompiledBatch(compiled[:16])
    with obs.enabled_scope(False):
        benchmark(lambda: _batched_round(small))

"""Fast incremental EFT engine vs the reference scalar path.

The vectorized engine (``engine="fast"``, the default) must produce
bit-identical schedules to the reference path while being substantially
faster.  This bench times both paths on a size sweep in append mode and
on the headline configuration of the perf work -- 1000 tasks on 8 CPUs
with insertion-based mapping, where the reference pays |ITQ| x CPUs
scalar gap scans per step -- asserts the schedules match exactly, and
enforces the >=3x speedup acceptance bar on the headline run.
"""

import time

import numpy as np

from conftest import emit
from repro import obs
from repro.core import HDLTS
from repro.experiments.report import format_table
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph

#: acceptance bar for the headline 1000-task / 8-CPU insertion run
SPEEDUP_FLOOR = 3.0


def _signature(schedule):
    return {
        task: tuple(
            sorted(
                (c.proc, c.start, c.finish, c.duplicate)
                for c in schedule.copies(task)
            )
        )
        for task in schedule.graph.tasks()
        if schedule.copies(task)
    }


def _time_scheduler(make, graph, reps=3):
    """Best-of-``reps`` wall time; returns (seconds, schedule)."""
    best, schedule = float("inf"), None
    for _ in range(reps):
        scheduler = make()
        started = time.perf_counter()
        result = scheduler.run(graph)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, schedule = elapsed, result.schedule
    return best, schedule


def test_engine_scaling(benchmark):
    rows = []
    headline_speedup = None
    cases = (
        (250, 4, False),
        (500, 8, False),
        (1000, 8, False),
        (1000, 8, True),
    )
    # the scheduler itself is what is measured -- profiling collection
    # (enabled suite-wide by benchmarks/conftest.py) stays off here
    with obs.enabled_scope(False):
        for v, n_procs, insertion in cases:
            graph = generate_random_graph(
                GeneratorConfig(v=v, n_procs=n_procs),
                np.random.default_rng(0),
            ).normalized()
            ref_s, ref = _time_scheduler(
                lambda: HDLTS(engine="reference", use_insertion=insertion),
                graph,
            )
            fast_s, fast = _time_scheduler(
                lambda: HDLTS(engine="fast", use_insertion=insertion),
                graph,
            )
            assert _signature(fast) == _signature(ref)
            speedup = ref_s / fast_s if fast_s > 0 else float("inf")
            rows.append(
                [
                    str(v),
                    str(n_procs),
                    "insertion" if insertion else "append",
                    f"{ref_s * 1e3:.0f}",
                    f"{fast_s * 1e3:.0f}",
                    f"{speedup:.1f}x",
                ]
            )
            if (v, n_procs, insertion) == (1000, 8, True):
                headline_speedup = speedup

    emit(
        "engine_scaling",
        "HDLTS wall time: reference vs fast engine (bit-identical "
        "schedules):\n"
        + format_table(
            ["tasks", "CPUs", "mapping", "reference (ms)", "fast (ms)",
             "speedup"],
            rows,
        ),
    )

    assert headline_speedup is not None
    assert headline_speedup >= SPEEDUP_FLOOR, (
        f"fast engine only {headline_speedup:.1f}x faster on the "
        f"1000-task/8-CPU insertion run; the bar is {SPEEDUP_FLOOR}x"
    )

    graph = generate_random_graph(
        GeneratorConfig(v=1000, n_procs=8), np.random.default_rng(0)
    ).normalized()
    benchmark(lambda: HDLTS().run(graph))

"""Regenerate the paper's fig11 (montage efficiency) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig11 = figure_bench("fig11")

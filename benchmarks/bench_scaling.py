"""Scheduler runtime scaling (the paper's complexity discussion).

The paper gives HDLTS complexity O(v^2 * (v/k) * p) and stresses that
list schedulers are the low-cost family.  This bench measures wall time
of every algorithm across task counts (the Table II sizes up to 5000)
and times HDLTS on the 1000-task point with pytest-benchmark.
"""

import time

import numpy as np

from conftest import emit
from repro.baselines.registry import PAPER_SET, make_scheduler
from repro.experiments.report import format_table
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph


def test_scaling(benchmark):
    sizes = (100, 500, 1000, 5000)
    rows = []
    for v in sizes:
        graph = generate_random_graph(
            GeneratorConfig(v=v), np.random.default_rng(0)
        ).normalized()
        cells = [str(v)]
        for name in PAPER_SET:
            scheduler = make_scheduler(name)
            started = time.perf_counter()
            result = scheduler.run(graph)
            elapsed = time.perf_counter() - started
            assert result.schedule.is_complete()
            cells.append(f"{elapsed * 1e3:.0f}")
        rows.append(cells)
    emit(
        "scaling",
        "Scheduler wall time (ms) vs task count (4 CPUs):\n"
        + format_table(["tasks"] + list(PAPER_SET), rows),
    )

    graph = generate_random_graph(
        GeneratorConfig(v=1000), np.random.default_rng(0)
    ).normalized()
    from repro.core import HDLTS

    benchmark(lambda: HDLTS().run(graph))

"""Ablation: append (Definition 3 Avail) vs insertion-based EST.

The HDLTS trace uses append semantics while HEFT/PETS/PEFT insert into
idle gaps.  This bench quantifies how much of the algorithms' gap is due
to that policy rather than prioritization: HDLTS +- insertion against
HEFT +- insertion on communication-heavy random DAGs.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.experiments.harness import SweepDefinition, run_sweep
from repro.experiments.report import format_sweep
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph


def _definition() -> SweepDefinition:
    base = GeneratorConfig(v=100, density=4)  # denser -> more idle gaps

    def make(ccr, rng):
        return generate_random_graph(base.with_(ccr=float(ccr)), rng)

    return SweepDefinition(
        key="ablation_insertion",
        title="Ablation: insertion-based EST (SLR vs CCR)",
        x_label="CCR",
        x_values=(1.0, 3.0, 5.0),
        metric="slr",
        make_graph=make,
        schedulers=("HDLTS", "HDLTS-insertion", "HEFT", "HEFT-noinsertion"),
        description="random DAGs v=100 density=4",
    )


def test_ablation_insertion(benchmark):
    result = run_sweep(_definition(), reps=bench_reps(), seed=0)
    emit("ablation_insertion", format_sweep(result))

    graph = _definition().make_graph(3.0, np.random.default_rng(0)).normalized()
    from repro.core import HDLTS

    benchmark(lambda: HDLTS(use_insertion=True).run(graph))

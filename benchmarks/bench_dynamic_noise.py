"""Dynamic extension bench: scheduling under uncertainty (future work).

Two experiments on random 100-task workflows:

1. **noise** -- realized execution times deviate from estimates by a
   relative sigma; compare executing a frozen static HDLTS schedule
   against OnlineHDLTS deciding at runtime, on identical realizations;
2. **failure** -- one CPU fail-stops at 30% of the healthy makespan;
   compare fully-online HDLTS against static-with-repair
   (checkpoint-and-replan) -- frozen static schedules simply cannot
   finish at all.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.core import HDLTS
from repro.dynamic import FailStop, OnlineHDLTS, gaussian_noise, replay_static
from repro.dynamic.repair import repair_after_failure
from repro.experiments.report import format_table
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.metrics.stats import RunningStats

_CONFIG = GeneratorConfig(v=100, n_procs=4, ccr=2.0)


def test_dynamic_noise(benchmark):
    reps = bench_reps()
    rows = []
    for sigma in (0.0, 0.2, 0.4, 0.6):
        static_stats, online_stats = RunningStats(), RunningStats()
        for rep in range(reps):
            rng = np.random.default_rng([rep, int(sigma * 10)])
            graph = generate_random_graph(_CONFIG, rng).normalized()
            noise = gaussian_noise(graph, sigma, rng)
            plan = HDLTS().run(graph).schedule
            static_stats.add(replay_static(graph, plan, noise).makespan)
            online_stats.add(OnlineHDLTS().execute(graph, noise).makespan)
        rows.append(
            [
                f"{sigma:.1f}",
                f"{static_stats.mean:.1f}",
                f"{online_stats.mean:.1f}",
                f"{static_stats.mean / online_stats.mean - 1:+.1%}",
            ]
        )
    noise_table = format_table(
        ["sigma", "static replay", "online HDLTS", "online advantage"], rows
    )

    # failure scenario: fully-online vs checkpoint-and-replan repair
    survived = 0
    slowdowns = RunningStats()
    repair_vs_online = RunningStats()
    for rep in range(reps):
        rng = np.random.default_rng([7, rep])
        graph = generate_random_graph(_CONFIG, rng).normalized()
        noise = gaussian_noise(graph, 0.2, rng)
        healthy = OnlineHDLTS().execute(graph, noise)
        failure = FailStop(proc=0, at_time=healthy.makespan * 0.3)
        crashed = OnlineHDLTS().execute(graph, noise, failures=[failure])
        plan = HDLTS().run(graph).schedule
        repaired = repair_after_failure(graph, plan, failure, noise)
        if set(crashed.finish_times) == set(graph.tasks()):
            survived += 1
            slowdowns.add(crashed.makespan / healthy.makespan - 1.0)
            repair_vs_online.add(repaired.makespan / crashed.makespan - 1.0)
    failure_text = (
        f"CPU 0 fail-stop at 30% of healthy makespan: "
        f"{survived}/{reps} runs completed on survivors, "
        f"mean slowdown {slowdowns.mean:+.1%}; "
        f"static-with-repair vs online: {repair_vs_online.mean:+.1%}"
    )
    emit(
        "dynamic_noise",
        "Online vs static under execution-time noise "
        f"(v=100, 4 CPUs, CCR=2, reps={reps}):\n{noise_table}\n\n{failure_text}",
    )
    assert survived == reps  # the online scheduler always finishes

    graph = generate_random_graph(_CONFIG, np.random.default_rng(0)).normalized()
    noise = gaussian_noise(graph, 0.3, np.random.default_rng(1))
    benchmark(lambda: OnlineHDLTS().execute(graph, noise))

"""Ablation: pillar 3 -- the penalty-value priority rule.

Compares the paper's PV (sample std of the EFT vector) against the
ablation rules: EFT range (max - min), mean EFT, greedy min-EFT
selection, and HEFT's upward rank applied to the dynamic ready list
(pillar 2 without pillar 3).  If the paper's claim holds, PV should
dominate the greedy strawman and at least match the cruder proxies.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.experiments.harness import SweepDefinition, run_sweep
from repro.experiments.report import format_sweep
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph


def _definition() -> SweepDefinition:
    base = GeneratorConfig(v=100, beta=1.6)  # high heterogeneity

    def make(ccr, rng):
        return generate_random_graph(base.with_(ccr=float(ccr)), rng)

    return SweepDefinition(
        key="ablation_priority",
        title="Ablation: ITQ priority rule (SLR vs CCR)",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        make_graph=make,
        schedulers=(
            "HDLTS",
            "HDLTS-range",
            "HDLTS-meaneft",
            "HDLTS-greedy",
            "HDLTS-rank",
        ),
        description="random DAGs v=100 beta=1.6 (strongly heterogeneous)",
    )


def test_ablation_priority(benchmark):
    result = run_sweep(_definition(), reps=bench_reps(), seed=0)
    emit("ablation_priority", format_sweep(result))

    graph = _definition().make_graph(3.0, np.random.default_rng(0)).normalized()
    from repro.core import HDLTS

    benchmark(lambda: HDLTS().run(graph))

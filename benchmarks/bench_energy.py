"""Energy bench: the Section II-B duplication trade-off, quantified.

For each scheduler (with/without duplication) on single-entry random
DAGs: makespan, total energy, duplication share, and the energy saved by
DVFS slack reclamation at the same makespan.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.baselines.registry import make_scheduler
from repro.energy.model import EnergyModel
from repro.energy.slack import reclaim_slack
from repro.experiments.report import format_table
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.metrics.stats import RunningStats

_SCHEDULERS = ("HDLTS", "HDLTS-nodup", "SDBATS", "SDBATS-nodup", "DHEFT", "HEFT")
_CONFIG = GeneratorConfig(v=80, ccr=3.0, single_entry=True)


def test_energy(benchmark):
    reps = bench_reps()
    makespan = {n: RunningStats() for n in _SCHEDULERS}
    energy = {n: RunningStats() for n in _SCHEDULERS}
    dup_share = {n: RunningStats() for n in _SCHEDULERS}
    reclaimed = {n: RunningStats() for n in _SCHEDULERS}
    for rep in range(reps):
        rng = np.random.default_rng([23, rep])
        graph = generate_random_graph(_CONFIG, rng).normalized()
        model = EnergyModel(graph.n_procs)
        for name in _SCHEDULERS:
            schedule = make_scheduler(name).run(graph).schedule
            report = model.energy(schedule)
            makespan[name].add(report.makespan)
            energy[name].add(report.total)
            dup_share[name].add(report.duplication_overhead)
            stretched, scales = reclaim_slack(graph, schedule)
            saved = model.energy_with_frequencies(stretched, scales)
            reclaimed[name].add(1.0 - saved.total / report.total)
    rows = [
        [
            name,
            f"{makespan[name].mean:.1f}",
            f"{energy[name].mean:.0f}",
            f"{dup_share[name].mean:.1%}",
            f"{reclaimed[name].mean:.1%}",
        ]
        for name in _SCHEDULERS
    ]
    emit(
        "energy",
        f"Energy vs makespan (v=80, CCR=3, single entry, reps={reps}):\n"
        + format_table(
            ["scheduler", "makespan", "energy", "dup share", "DVFS saving"],
            rows,
        ),
    )

    graph = generate_random_graph(_CONFIG, np.random.default_rng(0)).normalized()
    model = EnergyModel(graph.n_procs)

    def run():
        schedule = make_scheduler("HDLTS").run(graph).schedule
        stretched, scales = reclaim_slack(graph, schedule)
        return model.energy_with_frequencies(stretched, scales)

    benchmark(run)

"""Extension bench: every scheduler family across the workload spectrum.

Puts the paper's Section II taxonomy to the test: list scheduling
(HEFT/HDLTS and friends), duplication-based (DHEFT), clustering (LC) and
genetic (GA), on four structurally distinct workloads -- random layered
DAGs, FFT (butterfly), Epigenomics (chains), CyberShake (fan-out/join).
The paper argues list schedulers give the best quality/cost ratio; the
`scaling` bench provides the cost side, this one the quality side.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.baselines.registry import make_scheduler
from repro.experiments.report import format_table
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.metrics.metrics import slr
from repro.metrics.stats import RunningStats
from repro.workflows.cybershake import cybershake_topology
from repro.workflows.epigenomics import epigenomics_topology
from repro.workflows.fft import fft_topology
from repro.workflows.topology import realize_topology

_SCHEDULERS = (
    "HDLTS",
    "HEFT",
    "SDBATS",
    "DLS",
    "LA-HEFT",
    "DHEFT",
    "GA",
    "LC",
)


def _workloads():
    def random_graph(rng):
        return generate_random_graph(
            GeneratorConfig(v=60, ccr=2.0, single_entry=True), rng
        )

    def fft(rng):
        return realize_topology(fft_topology(8), 4, rng=rng, ccr=2.0)

    def epigenomics(rng):
        return realize_topology(epigenomics_topology(6), 4, rng=rng, ccr=2.0)

    def cybershake(rng):
        return realize_topology(cybershake_topology(4, 3), 4, rng=rng, ccr=2.0)

    return [
        ("random", random_graph),
        ("fft", fft),
        ("epigenomics", epigenomics),
        ("cybershake", cybershake),
    ]


def test_extended_schedulers(benchmark):
    reps = bench_reps()
    rows = []
    for label, factory in _workloads():
        stats = {name: RunningStats() for name in _SCHEDULERS}
        for rep in range(reps):
            rng = np.random.default_rng([17, rep])
            graph = factory(rng)
            if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
                graph = graph.normalized()
            for name in _SCHEDULERS:
                result = make_scheduler(name).run(graph)
                stats[name].add(slr(graph, result.makespan))
        rows.append(
            [label] + [f"{stats[name].mean:.3f}" for name in _SCHEDULERS]
        )
    emit(
        "extended_schedulers",
        f"Mean SLR by scheduler family and workload shape (reps={reps}, CCR=2):\n"
        + format_table(["workload"] + list(_SCHEDULERS), rows),
    )

    graph = _workloads()[0][1](np.random.default_rng(0)).normalized()
    from repro.core import HDLTS

    benchmark(lambda: HDLTS().run(graph))

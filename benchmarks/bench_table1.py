"""Regenerate Table I and the in-text Fig. 1 makespan comparison.

The schedule trace is deterministic, so the regenerated table is checked
(not just printed): any drift from the published schedule fails the
bench.  The timed region is the full HDLTS run on the Fig. 1 graph.
"""

from conftest import emit
from repro.core import HDLTS
from repro.core.trace import format_trace
from repro.experiments.report import format_makespans
from repro.experiments.table1 import (
    PAPER_FIG1_MAKESPANS,
    fig1_makespans,
    table1_trace,
)
from repro.workflows.paper_example import paper_example_graph


def test_table1(benchmark):
    trace = table1_trace()
    assert trace[-1].finish == 73.0

    measured = fig1_makespans()
    assert measured["HDLTS"] == 73.0
    assert measured["HEFT"] == 80.0
    assert measured["SDBATS"] == 74.0

    text = "\n".join(
        [
            "Table I -- HDLTS schedule produced at each step (Fig. 1 graph):",
            format_trace(trace),
            "",
            "Fig. 1 makespans, measured vs published:",
            format_makespans(measured, PAPER_FIG1_MAKESPANS),
        ]
    )
    emit("table1", text)

    graph = paper_example_graph()
    benchmark(lambda: HDLTS().run(graph))

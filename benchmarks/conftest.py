"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper: it runs the
figure's sweep (replications configurable through ``REPRO_BENCH_REPS``,
default 10), prints the series the paper plots, saves it under
``benchmarks/results/``, and times the representative scheduling call
with pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only
      REPRO_BENCH_REPS=100 pytest benchmarks/ --benchmark-only  (slower,
      tighter averages; the paper used 1000 replications)
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_reps(default: int = 10) -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", default))


def emit(key: str, text: str) -> None:
    """Print a regenerated table and persist it for EXPERIMENTS.md."""
    banner = f"\n===== {key} " + "=" * max(0, 66 - len(key))
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{key}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def reps() -> int:
    return bench_reps()

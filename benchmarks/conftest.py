"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper: it runs the
figure's sweep (replications configurable through ``REPRO_BENCH_REPS``,
default 10), prints the series the paper plots, saves it under
``benchmarks/results/``, and times the representative scheduling call
with pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only
      REPRO_BENCH_REPS=100 pytest benchmarks/ --benchmark-only  (slower,
      tighter averages; the paper used 1000 replications)
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro import obs

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
TIMINGS_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_timings.json"

#: per-bench wall time + headline obs counters, keyed by pytest nodeid
_TIMINGS: dict = {}

#: counters worth carrying into the timings file (suffix match)
_KEY_METRICS = ("/decisions", "/eft_evaluations", "/runs", "/replications")


@pytest.fixture(autouse=True)
def _bench_timing(request):
    """Time every bench and capture its observability counters.

    Each bench runs with profiling enabled inside its own metrics scope;
    the wall time plus the headline counters land in
    ``benchmarks/BENCH_timings.json`` at session end.
    """
    with obs.enabled_scope(True):
        with obs.scoped(merge_up=False) as registry:
            started = time.perf_counter()
            yield
            wall = time.perf_counter() - started
    counters = registry.snapshot()["counters"]
    _TIMINGS[request.node.nodeid] = {
        "wall_s": round(wall, 6),
        "metrics": {
            k: v for k, v in counters.items() if k.endswith(_KEY_METRICS)
        },
    }


def pytest_sessionfinish(session, exitstatus):
    """Write the machine-readable per-bench timing report."""
    if not _TIMINGS:
        return
    document = {
        "schema": "repro.bench_timings/1",
        "reps": bench_reps(),
        "benchmarks": dict(sorted(_TIMINGS.items())),
    }
    TIMINGS_PATH.write_text(json.dumps(document, indent=2) + "\n")


def bench_reps(default: int = 10) -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", default))


def emit(key: str, text: str) -> None:
    """Print a regenerated table and persist it for EXPERIMENTS.md."""
    banner = f"\n===== {key} " + "=" * max(0, 66 - len(key))
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{key}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def reps() -> int:
    return bench_reps()

#!/usr/bin/env python
"""Compare a fresh BENCH_timings.json against the committed baseline.

CI's perf-smoke job reruns the scaling benches and calls this script to
catch wall-time regressions early.  A bench fails the check when its
wall time exceeds ``factor`` times the committed baseline; benches
present in only one file are reported but never fail the check (new
benches land without a baseline, retired ones drop out).

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/BENCH_baseline.json \
        --current benchmarks/BENCH_timings.json \
        --factor 2.0

After an *accepted* perf change (new benches, intentional slowdowns),
regenerate the committed baseline from a fresh run in one command::

    python benchmarks/check_regression.py \
        --baseline benchmarks/BENCH_baseline.json \
        --current benchmarks/BENCH_timings.json \
        --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_wall_times(path: Path) -> dict:
    doc = json.loads(path.read_text())
    if doc.get("schema") != "repro.bench_timings/1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {
        name: entry["wall_s"] for name, entry in doc["benchmarks"].items()
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when current wall time exceeds baseline * factor",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        dest="update_baseline",
        help="overwrite the baseline file with the current timings "
        "(after an accepted perf change) instead of comparing",
    )
    args = parser.parse_args(argv)

    if args.update_baseline:
        current_doc = json.loads(args.current.read_text())
        if current_doc.get("schema") != "repro.bench_timings/1":
            raise SystemExit(
                f"{args.current}: unexpected schema "
                f"{current_doc.get('schema')!r}"
            )
        names = sorted(current_doc.get("benchmarks", {}))
        if not names:
            print("current run recorded no benchmarks; baseline unchanged")
            return 1
        args.baseline.write_text(
            json.dumps(current_doc, indent=2) + "\n"
        )
        print(f"baseline {args.baseline} updated from {args.current}:")
        for name in names:
            print(f"  {name}")
        return 0

    baseline = load_wall_times(args.baseline)
    current = load_wall_times(args.current)

    shared = sorted(baseline.keys() & current.keys())
    if not current:
        print("current run recorded no benchmarks")
        return 1
    if not shared:
        # nothing to compare, but the run did produce benches: they are
        # all new (no baseline yet) -- informational, not a failure, so
        # a bench added mid-PR cannot break perf-smoke before the
        # baseline is regenerated
        for name in sorted(current.keys()):
            print(f"{'new':>10}  (no baseline yet)   {name}")
        print("\nno overlapping benchmarks; nothing to compare")
        return 0

    regressions = []
    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 0.0
        status = "ok"
        if ratio > args.factor:
            status = "REGRESSION"
            regressions.append(name)
        print(
            f"{status:>10}  {baseline[name]:8.2f}s -> {current[name]:8.2f}s "
            f"({ratio:4.2f}x)  {name}"
        )
    for name in sorted(baseline.keys() - current.keys()):
        print(f"{'missing':>10}  (in baseline only)  {name}")
    for name in sorted(current.keys() - baseline.keys()):
        print(f"{'new':>10}  (no baseline yet)   {name}")

    if regressions:
        print(
            f"\n{len(regressions)} bench(es) regressed more than "
            f"{args.factor}x; update benchmarks/BENCH_baseline.json if the "
            "slowdown is intentional"
        )
        return 1
    print(f"\nall {len(shared)} shared benches within {args.factor}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Compiled workload layer vs the object-graph path on a paired sweep.

The compiled layer (:mod:`repro.model.compiled`) freezes each random
instance into CSR arrays once per replication and shares the derived
artifacts (cost matrix, ranks, OCT, CP_MIN) across the full scheduler
set; ``use_compiled(False)`` restores the pre-compiled code paths
(per-run ``cost_matrix()`` copies, scalar rank recursions, dict-based
parent walks) on identical inputs -- the two arms draw the same RNG
sequence and must report bit-identical sweep statistics.

This bench times both arms on the paper's Fig. 2 sweep (100-task random
DAGs, five CCR points, the full paper scheduler set) with an
alternating-pair protocol: each round runs disabled-then-enabled
back-to-back so CPU-frequency drift hits both arms alike, and the
per-arm minimum over rounds is the measure.  Acceptance: >=2x
replication throughput with identical means, stds and observability
counters.
"""

import time

import numpy as np

from conftest import bench_reps, emit
from repro import obs
from repro.experiments.figures import get_figure
from repro.experiments.harness import run_sweep
from repro.model.compiled import use_compiled

#: acceptance bar for the paired Fig. 2 sweep (full scheduler set)
SPEEDUP_FLOOR = 2.0

#: alternating disabled/enabled rounds; min per arm is the measure
ROUNDS = 4


def _run_arm(definition, reps, enabled):
    if enabled:
        return run_sweep(definition, reps=reps, seed=0)
    with use_compiled(False):
        return run_sweep(definition, reps=reps, seed=0)


def _assert_outputs_identical(definition, reps):
    """Both arms must agree bit for bit: stats AND obs counters."""
    with obs.enabled_scope(True):
        with obs.scoped(merge_up=False) as reg_en:
            enabled = _run_arm(definition, reps, True)
        with obs.scoped(merge_up=False) as reg_dis:
            disabled = _run_arm(definition, reps, False)
    for x in definition.x_values:
        for name in definition.schedulers:
            a, b = enabled.stats[x][name], disabled.stats[x][name]
            assert a.mean == b.mean, (x, name)
            assert a.std == b.std, (x, name)
            assert a.n == b.n, (x, name)
    counters_en = reg_en.snapshot()["counters"]
    counters_dis = reg_dis.snapshot()["counters"]
    assert counters_en == counters_dis


def test_compile_cache_throughput(benchmark):
    definition = get_figure("fig2")
    reps = bench_reps()

    # correctness first: identical outputs, including counters
    _assert_outputs_identical(definition, reps)

    # the sweep itself is what is measured -- profiling collection
    # (enabled suite-wide by benchmarks/conftest.py) stays off here
    rows = []
    t_dis, t_en = [], []
    with obs.enabled_scope(False):
        _run_arm(definition, reps, True)  # warm both arms
        _run_arm(definition, reps, False)
        for _ in range(ROUNDS):
            started = time.perf_counter()
            _run_arm(definition, reps, False)
            mid = time.perf_counter()
            _run_arm(definition, reps, True)
            ended = time.perf_counter()
            t_dis.append(mid - started)
            t_en.append(ended - mid)
            rows.append((mid - started, ended - mid))

    replications = reps * len(definition.x_values)
    best_dis, best_en = min(t_dis), min(t_en)
    speedup = best_dis / best_en if best_en > 0 else float("inf")
    lines = [
        "paired Fig. 2 sweep: object-graph arm vs compiled arm "
        "(bit-identical outputs):",
        f"  replications per arm : {replications} "
        f"({reps} reps x {len(definition.x_values)} CCR points)",
    ]
    for i, (d, e) in enumerate(rows):
        lines.append(
            f"  round {i}: object-graph {d * 1e3:7.0f} ms   "
            f"compiled {e * 1e3:7.0f} ms   ratio {d / e:.2f}x"
        )
    lines.append(
        f"  best-of-{ROUNDS}: object-graph {best_dis * 1e3:.0f} ms "
        f"({1e3 * best_dis / replications:.1f} ms/rep)   "
        f"compiled {best_en * 1e3:.0f} ms "
        f"({1e3 * best_en / replications:.1f} ms/rep)   "
        f"speedup {speedup:.2f}x"
    )
    emit("compile_cache", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled layer only {speedup:.2f}x faster on the paired Fig. 2 "
        f"sweep; the bar is {SPEEDUP_FLOOR}x"
    )

    with obs.enabled_scope(False):
        benchmark(lambda: run_sweep(definition, reps=2, seed=0))

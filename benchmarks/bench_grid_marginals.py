"""Table II factorial sample with per-axis marginals.

The paper's own protocol: average each figure's metric over (a sample
of) the entire Table II grid rather than pinning defaults.  A uniform
random sample of configurations (capped at 500 tasks) is run and the
marginal mean SLR per axis value is reported -- the density/alpha/beta
marginals have no dedicated figure in the paper, so this bench is also
the sensitivity analysis the paper omits.

``REPRO_BENCH_REPS`` scales the number of sampled configurations.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.experiments.grid import format_marginals, run_grid


def test_grid_marginals(benchmark):
    n_configs = 15 * bench_reps()  # 150 configs at the default 10 reps
    result = run_grid(
        metric="slr",
        sample=n_configs,
        reps=2,
        seed=0,
        max_tasks=500,
    )
    emit("grid_marginals", format_marginals(result))

    from repro.core import HDLTS
    from repro.generator.parameters import GeneratorConfig
    from repro.generator.random_dag import generate_random_graph

    graph = generate_random_graph(
        GeneratorConfig(v=300, single_entry=True), np.random.default_rng(0)
    ).normalized()
    benchmark(lambda: HDLTS().run(graph))

"""Regenerate the paper's fig3 (random slr vs tasks) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig3 = figure_bench("fig3")

"""Regenerate the paper's fig7 (fft slr vs ccr) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig7 = figure_bench("fig7")

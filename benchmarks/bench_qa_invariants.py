"""Cost of the standing correctness kit's oracle pass.

The invariant registry is meant to be cheap enough to run after every
build in a fuzz campaign (~80 builds/instance across the combo grid),
so this bench times one full registry pass against the schedule build
it audits, on a mid-size random instance.

The ``perf``-marked guard at the bottom (deselected by default, run
with ``-m perf``) pins an absolute ceiling so a quadratic regression in
an oracle cannot hide inside nightly fuzz wall time.
"""

import time

import pytest

from conftest import emit
from repro.core import HDLTS
from repro.qa.invariants import run_invariants
from tests.conftest import make_random_graph

#: ``perf`` ceiling: one registry pass on the 300-task instance (seconds)
REGISTRY_PASS_CEILING = 2.0


def _timed(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_invariant_registry_overhead(benchmark):
    graph = make_random_graph(seed=0, v=300, n_procs=6)
    scheduler = HDLTS()
    prepared = scheduler.prepare(graph)
    schedule = scheduler.build_schedule(prepared)

    build = _timed(lambda: HDLTS().run(graph))
    audit = _timed(lambda: run_invariants(prepared, schedule))
    emit(
        "qa_invariants",
        "full invariant registry vs one HDLTS build (300 tasks, 6 CPUs):\n"
        f"  build : {build * 1e3:7.1f} ms\n"
        f"  audit : {audit * 1e3:7.1f} ms "
        f"({audit / build:.2f}x of one build)",
    )
    benchmark(lambda: run_invariants(prepared, schedule))


@pytest.mark.perf
def test_registry_pass_stays_subsecond():
    graph = make_random_graph(seed=1, v=300, n_procs=6)
    scheduler = HDLTS()
    prepared = scheduler.prepare(graph)
    schedule = scheduler.build_schedule(prepared)
    elapsed = _timed(lambda: run_invariants(prepared, schedule), rounds=3)
    assert elapsed < REGISTRY_PASS_CEILING, (
        f"one registry pass took {elapsed:.2f}s on 300 tasks; "
        f"ceiling is {REGISTRY_PASS_CEILING}s"
    )

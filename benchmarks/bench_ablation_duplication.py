"""Ablation: pillar 1 -- effective entry-task duplication.

Compares HDLTS with and without Algorithm 1 (and SDBATS's
duplicate-everywhere policy with and without duplication) as CCR grows;
duplication should matter most when the entry's output is expensive to
ship.  Regenerates an SLR-vs-CCR series in the style of Fig. 2.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.experiments.harness import SweepDefinition, run_sweep
from repro.experiments.report import format_sweep
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph


def _definition() -> SweepDefinition:
    # a *real* single entry task (a zero-cost pseudo entry would make
    # Algorithm 1 a no-op); tall graphs keep the entry's fan-out modest
    base = GeneratorConfig(alpha=0.5, v=100, single_entry=True)

    def make(ccr, rng):
        return generate_random_graph(base.with_(ccr=float(ccr)), rng)

    return SweepDefinition(
        key="ablation_duplication",
        title="Ablation: entry-task duplication (SLR vs CCR)",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        make_graph=make,
        schedulers=("HDLTS", "HDLTS-nodup", "SDBATS", "SDBATS-nodup"),
        description="random DAGs v=100 alpha=0.5 (tall, real entry tasks)",
    )


def test_ablation_duplication(benchmark):
    result = run_sweep(_definition(), reps=bench_reps(), seed=0)
    emit("ablation_duplication", format_sweep(result))

    graph = _definition().make_graph(3.0, np.random.default_rng(0)).normalized()
    from repro.core import HDLTS

    benchmark(lambda: HDLTS().run(graph))

"""Quiet-path overhead of the span tracer.

Instrumentation must be free when nobody is listening.  With tracing
off, ``obs.span`` hands back a shared no-op; with tracing on but no
bus subscriber, spans are created and dropped without a single emit.
This bench times the same scheduler workload under both regimes --
interleaving the samples so thermal/cache drift cancels -- and
enforces the <2% quiet-path acceptance bar of the observability work.
"""

import time

import numpy as np

from conftest import bench_reps, emit
from repro import obs
from repro.core import HDLTS
from repro.experiments.report import format_table
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph

#: acceptance bar: quiet instrumentation may cost at most this fraction
OVERHEAD_CEILING = 0.02

#: scheduler runs folded into one timing sample
RUNS_PER_SAMPLE = 3


def _sample(graph, trace):
    """Wall time of ``RUNS_PER_SAMPLE`` scheduler runs under one regime."""
    with obs.tracing_scope(trace):
        started = time.perf_counter()
        for _ in range(RUNS_PER_SAMPLE):
            HDLTS().run(graph)
        return time.perf_counter() - started


def test_obs_quiet_overhead(benchmark):
    graph = generate_random_graph(
        GeneratorConfig(v=500, n_procs=8), np.random.default_rng(0)
    ).normalized()

    # nobody may be listening: a subscribed bus would turn the "quiet"
    # arm into a real export run and void the comparison
    assert not obs.get_bus().active

    samples = max(bench_reps(), 8)
    best = {"off": float("inf"), "quiet": float("inf")}
    # metrics collection (enabled suite-wide by benchmarks/conftest.py)
    # stays off in both arms -- the span machinery alone is on trial
    with obs.enabled_scope(False):
        _sample(graph, trace=False)  # warm caches outside the timing
        taken = 0
        while True:
            for _ in range(samples):
                best["off"] = min(best["off"], _sample(graph, trace=False))
                best["quiet"] = min(
                    best["quiet"], _sample(graph, trace=True)
                )
            taken += samples
            overhead = best["quiet"] / best["off"] - 1.0
            # both best-of floors converge to the true wall time, so a
            # ratio inflated by scheduler/frequency noise shrinks with
            # more interleaved pairs; stop early once it is clearly in
            if overhead < OVERHEAD_CEILING / 2 or taken >= samples * 5:
                break
    emit(
        "obs_overhead",
        "span tracer quiet-path cost (500 tasks / 8 CPUs, best of "
        f"{taken} interleaved samples):\n"
        + format_table(
            ["regime", "best (ms)", "overhead"],
            [
                ["tracing off", f"{best['off'] * 1e3:.1f}", "--"],
                [
                    "tracing on, bus quiet",
                    f"{best['quiet'] * 1e3:.1f}",
                    f"{overhead * 100:+.2f}%",
                ],
            ],
        ),
    )

    assert overhead < OVERHEAD_CEILING, (
        f"quiet tracing costs {overhead * 100:.2f}% on the scheduler "
        f"loop; the bar is {OVERHEAD_CEILING * 100:.0f}%"
    )

    with obs.enabled_scope(False), obs.tracing_scope(True):
        benchmark(lambda: HDLTS().run(graph))

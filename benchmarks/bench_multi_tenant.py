"""Multi-tenant bench: sharing one HCE between concurrent workflows.

Composes a Montage, an FFT and a Molecular-Dynamics workflow onto one
platform (the intro's shared-HCE motivation) and compares schedulers on
shared makespan, mean tenant slowdown vs running alone, and unfairness
(max/min slowdown).
"""

import numpy as np

from conftest import bench_reps, emit
from repro.baselines.registry import make_scheduler
from repro.experiments.report import format_table
from repro.metrics.stats import RunningStats
from repro.multi.compose import compose, tenant_report
from repro.workflows.fft import fft_topology
from repro.workflows.molecular import molecular_dynamics_topology
from repro.workflows.montage import montage_topology
from repro.workflows.topology import realize_topology

_SCHEDULERS = ("HDLTS", "HEFT", "SDBATS", "PEFT")


def _tenants(rng):
    return [
        realize_topology(montage_topology(20), 4, rng=rng, ccr=2.0),
        realize_topology(fft_topology(8), 4, rng=rng, ccr=2.0),
        realize_topology(molecular_dynamics_topology(), 4, rng=rng, ccr=2.0),
    ]


def test_multi_tenant(benchmark):
    reps = bench_reps()
    shared = {n: RunningStats() for n in _SCHEDULERS}
    slowdown = {n: RunningStats() for n in _SCHEDULERS}
    unfair = {n: RunningStats() for n in _SCHEDULERS}
    for rep in range(reps):
        rng = np.random.default_rng([31, rep])
        composite = compose(_tenants(rng))
        for name in _SCHEDULERS:
            scheduler = make_scheduler(name)
            schedule = scheduler.run(composite.graph).schedule
            reports, unfairness = tenant_report(composite, schedule, scheduler)
            shared[name].add(schedule.makespan)
            slowdown[name].add(
                float(np.mean([r.slowdown for r in reports]))
            )
            unfair[name].add(unfairness)
    rows = [
        [
            name,
            f"{shared[name].mean:.1f}",
            f"{slowdown[name].mean:.2f}x",
            f"{unfair[name].mean:.2f}",
        ]
        for name in _SCHEDULERS
    ]
    emit(
        "multi_tenant",
        f"Three workflows sharing 4 CPUs (reps={reps}, CCR=2):\n"
        + format_table(
            ["scheduler", "shared makespan", "mean slowdown", "unfairness"],
            rows,
        ),
    )

    composite = compose(_tenants(np.random.default_rng(0)))
    from repro.core import HDLTS

    benchmark(lambda: HDLTS().run(composite.graph))

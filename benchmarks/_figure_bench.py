"""Factory producing one pytest-benchmark test per paper figure.

Each generated test

1. regenerates the figure's full series (all five algorithms, every x
   point, ``reps`` replications) and prints/saves it via ``emit``;
2. benchmarks one representative HDLTS scheduling call on that figure's
   mid-point workload, so ``--benchmark-only`` runs also produce timing
   data for the algorithm itself.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_reps, emit
from repro.experiments.figures import get_figure
from repro.experiments.harness import run_sweep
from repro.experiments.report import format_sweep, winners


def figure_bench(key: str):
    def bench(benchmark):
        definition = get_figure(key)
        result = run_sweep(definition, reps=bench_reps(), seed=0)
        table = format_sweep(result)
        best = winners(result)
        lines = [table, "", "winner per point: " + ", ".join(
            f"{x}->{name}" for x, name in best.items()
        )]
        emit(key, "\n".join(lines))

        # time a representative single scheduling run (mid x point)
        mid = definition.x_values[len(definition.x_values) // 2]
        graph = definition.build_graph(mid, np.random.default_rng(1))
        if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
            graph = graph.normalized()
        from repro.core import HDLTS

        benchmark(lambda: HDLTS().run(graph))

    bench.__name__ = f"test_{key}"
    bench.__doc__ = f"Regenerate {key} and time HDLTS on its workload."
    return bench

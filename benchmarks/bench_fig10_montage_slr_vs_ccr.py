"""Regenerate the paper's fig10 (montage slr vs ccr) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig10 = figure_bench("fig10")

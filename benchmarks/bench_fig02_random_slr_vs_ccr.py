"""Regenerate the paper's fig2 (random slr vs ccr) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig2 = figure_bench("fig2")

"""Contention bench: what the contention-free assumption is worth.

Section III assumes a fully connected, contention-free network.  This
bench replays every scheduler's decisions under single-NIC contention
and reports the makespan inflation across CCR -- how much each
algorithm's schedules *depend* on the assumption.  Schedulers that pack
communication onto few links (co-locating chains) should inflate less.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.baselines.registry import make_scheduler
from repro.experiments.report import format_table
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.metrics.stats import RunningStats
from repro.schedule.contention import ContentionSimulator
from repro.schedule.simulator import ScheduleSimulator

_SCHEDULERS = ("HDLTS", "HEFT", "SDBATS", "PEFT", "LC")


def test_contention(benchmark):
    reps = bench_reps()
    rows = []
    for ccr in (1.0, 3.0, 5.0):
        stats = {name: RunningStats() for name in _SCHEDULERS}
        for rep in range(reps):
            rng = np.random.default_rng([41, rep, int(ccr)])
            graph = generate_random_graph(
                GeneratorConfig(v=80, ccr=ccr, n_procs=4, single_entry=True),
                rng,
            ).normalized()
            for name in _SCHEDULERS:
                schedule = make_scheduler(name).run(graph).schedule
                free = ScheduleSimulator(graph).run(schedule).makespan
                contended = ContentionSimulator(graph).run(schedule)
                stats[name].add(contended.inflation(free))
        rows.append(
            [f"{ccr:.1f}"]
            + [f"{stats[name].mean:+.1%}" for name in _SCHEDULERS]
        )
    emit(
        "contention",
        "Makespan inflation under single-NIC contention "
        f"(v=80, 4 CPUs, reps={reps}):\n"
        + format_table(["CCR"] + list(_SCHEDULERS), rows),
    )

    graph = generate_random_graph(
        GeneratorConfig(v=80, ccr=3.0, n_procs=4), np.random.default_rng(0)
    ).normalized()
    schedule = make_scheduler("HDLTS").run(graph).schedule
    benchmark(lambda: ContentionSimulator(graph).run(schedule))

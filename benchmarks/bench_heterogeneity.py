"""Heterogeneity-structure bench: consistent vs inconsistent matrices.

HDLTS's penalty value measures per-task EFT spread across CPUs.  On a
*consistent* platform (CPUs totally ordered by a per-CPU speed factor)
that spread carries no per-task information, so PV-style priorities
should lose their edge -- this bench measures exactly that, sweeping
beta for both matrix structures.
"""

import numpy as np

from conftest import bench_reps, emit
from repro.experiments.harness import SweepDefinition, run_sweep
from repro.experiments.report import format_sweep
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph


def _definition(heterogeneity: str) -> SweepDefinition:
    base = GeneratorConfig(
        v=100, ccr=2.0, single_entry=True, heterogeneity=heterogeneity
    )

    def make(beta, rng):
        return generate_random_graph(base.with_(beta=float(beta)), rng)

    return SweepDefinition(
        key=f"heterogeneity_{heterogeneity}",
        title=f"SLR vs beta, {heterogeneity} cost matrices",
        x_label="beta",
        x_values=(0.4, 0.8, 1.2, 1.6, 2.0),
        metric="slr",
        make_graph=make,
        schedulers=("HDLTS", "HEFT", "SDBATS", "PEFT"),
        description=f"v=100, CCR=2, single entry, {heterogeneity} W",
    )


def test_heterogeneity(benchmark):
    reps = bench_reps()
    sections = []
    for model in ("inconsistent", "consistent"):
        result = run_sweep(_definition(model), reps=reps, seed=0)
        sections.append(format_sweep(result))
    emit("heterogeneity", "\n\n".join(sections))

    graph = generate_random_graph(
        GeneratorConfig(v=100, heterogeneity="consistent"),
        np.random.default_rng(0),
    ).normalized()
    from repro.core import HDLTS

    benchmark(lambda: HDLTS().run(graph))

"""Service-store overhead on a paired fig2 workload.

The scheduling service routes every chunk through SQLite -- claim a
lease, execute, commit the values -- where ``run_sweep_parallel``
dispatches the same chunks straight to a process pool.  That
bookkeeping must stay in the noise: this bench runs the *same* fig2
workload both ways (two spawn-start workers each, same chunk plan,
same RNG streams), interleaving the arms so thermal and cache drift
hit both alike, and enforces the <10% overhead acceptance bar of the
service work.

Correctness first: the service's merged result must be bit-identical
to the direct parallel run -- the same Welford accumulator fields to
the last ulp.
"""

import time

from conftest import bench_reps, emit
from repro.experiments.figures import get_figure
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.report import format_table
from repro.runtime.context import DEFAULT_CONTEXT
from repro.service import api
from repro.service.worker import serve

#: acceptance bar: the store path may cost at most this fraction extra
OVERHEAD_CEILING = 0.10

#: interleaved direct/service rounds; best-of per arm is the measure
ROUNDS = 3

#: reps floor: the chunks must be compute-bound, or the ratio measures
#: scheduler noise instead of store bookkeeping
MIN_REPS = 16

WORKERS = 2
CHUNK = 4
SEED = 0


def _direct(definition, reps):
    """The incumbent: chunks straight into a spawn pool."""
    started = time.perf_counter()
    result = run_sweep_parallel(
        definition,
        reps=reps,
        seed=SEED,
        workers=WORKERS,
        chunk_size=CHUNK,
        start_method="spawn",
    )
    return time.perf_counter() - started, result


def _service(definition, reps, path):
    """The same chunks through submit -> lease -> commit -> merge."""
    context = DEFAULT_CONTEXT.with_(
        seed=SEED, chunk_size=CHUNK, start_method="spawn"
    )
    started = time.perf_counter()
    job = api.submit(path, [definition], reps, context)
    serve(path, workers=WORKERS, drain=True, poll_s=0.01)
    results = api.result(path, job.ticket)
    return time.perf_counter() - started, results[definition.key]


def _assert_bit_identical(a_result, b_result, definition):
    for x in definition.x_values:
        for name in definition.schedulers:
            a, b = a_result.stats[x][name], b_result.stats[x][name]
            assert (a.n, a._mean, a._m2, a._min, a._max) == (
                b.n, b._mean, b._m2, b._min, b._max
            ), (x, name)


def test_store_overhead(benchmark, tmp_path):
    definition = get_figure("fig2")
    reps = max(bench_reps(), MIN_REPS)

    # warm both arms outside the timing: spawn interpreter start and
    # module imports dominate a cold first round on either side
    _direct(definition, 1)
    _service(definition, 1, tmp_path / "warm")

    best = {"direct": float("inf"), "service": float("inf")}
    rows = []
    service_result = direct_result = None
    for i in range(ROUNDS):
        t_direct, direct_result = _direct(definition, reps)
        t_service, service_result = _service(
            definition, reps, tmp_path / f"svc-{i}"
        )
        best["direct"] = min(best["direct"], t_direct)
        best["service"] = min(best["service"], t_service)
        rows.append(
            [f"round {i}", f"{t_direct:.2f}", f"{t_service:.2f}",
             f"{t_service / t_direct:.3f}x"]
        )

    # correctness first: the store path merges bit-identically
    _assert_bit_identical(service_result, direct_result, definition)

    overhead = best["service"] / best["direct"] - 1.0
    rows.append(
        [f"best of {ROUNDS}", f"{best['direct']:.2f}",
         f"{best['service']:.2f}", f"{overhead * 100:+.1f}%"]
    )
    emit(
        "store_overhead",
        f"service store overhead on fig2 ({reps} reps, {WORKERS} spawn "
        f"workers, chunk {CHUNK}, bit-identical results):\n"
        + format_table(
            ["", "direct (s)", "service (s)", "overhead"], rows
        ),
    )

    assert overhead < OVERHEAD_CEILING, (
        f"the service store costs {overhead * 100:.1f}% over "
        f"run_sweep_parallel; the bar is {OVERHEAD_CEILING * 100:.0f}%"
    )

    # the pytest-benchmark series times the store bookkeeping alone:
    # one submit + status round trip per iteration
    def submit_status(counter=iter(range(10 ** 9))):
        path = tmp_path / f"bench-{next(counter)}"
        job = api.submit(path, [definition], reps, DEFAULT_CONTEXT)
        api.job_status(path, job.ticket)

    benchmark(submit_status)

"""Regenerate the paper's fig4 (random efficiency) and time HDLTS on it."""

from _figure_bench import figure_bench

test_fig4 = figure_bench("fig4")
